package baselines

import (
	"fmt"
	"math"
)

// Persistence is the no-model reference: the h-step-ahead forecast is
// the last observed value. Every serious method must beat it; the
// harness uses it to sanity-check the corpora (a dataset where nothing
// beats persistence carries no learnable structure).
type Persistence struct {
	resVar float64
	seen   int
	last   float64
	has    bool
}

// NewPersistence builds the baseline.
func NewPersistence() *Persistence { return &Persistence{} }

// Name identifies the method.
func (*Persistence) Name() string { return "Persistence" }

// Observe feeds the next value.
func (p *Persistence) Observe(v float64) {
	if p.has {
		e := v - p.last
		p.seen++
		alpha := 1 / math.Min(float64(p.seen), 200)
		p.resVar = (1-alpha)*p.resVar + alpha*e*e
	}
	p.last = v
	p.has = true
}

// Forecast predicts h steps ahead: the last value, with a random-walk
// variance h·σ̂² estimated from the one-step increments.
func (p *Persistence) Forecast(h int) (Prediction, error) {
	if !p.has {
		return Prediction{}, ErrNotTrained
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	v := p.resVar * float64(h)
	if v < varFloor {
		v = varFloor
	}
	return Prediction{Mean: p.last, Variance: v}, nil
}

// SeasonalNaive forecasts the value one season ago: ŷ(t+h) = y(t+h−m),
// the strongest trivial baseline on periodic sensor data.
type SeasonalNaive struct {
	// Period is the season length m in samples.
	Period int

	buf    []float64 // ring of the last Period values
	n      int       // total values observed
	resVar float64
	seen   int
}

// NewSeasonalNaive builds the baseline with season length m.
func NewSeasonalNaive(period int) *SeasonalNaive {
	return &SeasonalNaive{Period: period}
}

// Name identifies the method.
func (*SeasonalNaive) Name() string { return "SeasonalNaive" }

// Observe feeds the next value.
func (s *SeasonalNaive) Observe(v float64) error {
	if s.Period <= 0 {
		return fmt.Errorf("baselines: seasonal-naive period %d must be positive", s.Period)
	}
	if s.buf == nil {
		s.buf = make([]float64, s.Period)
	}
	if s.n >= s.Period {
		e := v - s.buf[s.n%s.Period]
		s.seen++
		alpha := 1 / math.Min(float64(s.seen), 200)
		s.resVar = (1-alpha)*s.resVar + alpha*e*e
	}
	s.buf[s.n%s.Period] = v
	s.n++
	return nil
}

// Forecast predicts h steps ahead (1 ≤ h ≤ Period) from the stored
// season.
func (s *SeasonalNaive) Forecast(h int) (Prediction, error) {
	if s.n < s.Period {
		return Prediction{}, fmt.Errorf("%w: need a full season (%d points), have %d",
			ErrNotTrained, s.Period, s.n)
	}
	if h <= 0 || h > s.Period {
		return Prediction{}, fmt.Errorf("baselines: horizon %d outside [1, %d]", h, s.Period)
	}
	// The last observation has time index n−1, so the forecast target
	// t+h−Period = n−1+h−Period lives at ring slot (n−1+h) mod Period.
	idx := (s.n - 1 + h) % s.Period
	v := s.resVar
	if v < varFloor {
		v = varFloor
	}
	return Prediction{Mean: s.buf[idx], Variance: v}, nil
}
