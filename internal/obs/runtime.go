package obs

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// GCPauseBuckets are the bucket bounds of the GC pause and scheduling
// latency histograms: 10µs to 2.5s in roughly ×2.5 steps. GC pauses
// live in the tens-of-µs to tens-of-ms range; the upper decades exist
// to catch the multi-second mark-assist stalls docs/PERF.md measured
// at 10⁵ resident sensors.
var GCPauseBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefaultRuntimeInterval is the background sampling period of the
// runtime telemetry when none is configured.
const DefaultRuntimeInterval = 10 * time.Second

// minRuntimeRefresh rate-limits scrape-triggered sampling: a scrape
// storm costs at most one runtime/metrics read per this interval.
const minRuntimeRefresh = time.Second

// Names of the runtime/metrics samples the sampler bridges.
const (
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
	rmHeapLive   = "/gc/heap/live:bytes"
	rmHeapGoal   = "/gc/heap/goal:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmAssistCPU  = "/cpu/classes/gc/mark/assist:cpu-seconds"
)

// RuntimeStats is a point-in-time view of the headline runtime
// telemetry, cheap enough for /healthz (atomic loads, no
// runtime/metrics read).
type RuntimeStats struct {
	// LastGCPauseMs is the stop-the-world duration of the most recent
	// GC cycle, in milliseconds (0 before the first GC).
	LastGCPauseMs float64
	// HeapLiveBytes is the live heap after the last GC mark phase.
	HeapLiveBytes uint64
	// HeapGoalBytes is the heap size the pacer is steering toward.
	HeapGoalBytes uint64
	// Goroutines is the live goroutine count.
	Goroutines uint64
	// GCCycles counts completed GC cycles since process start.
	GCCycles uint64
}

// RuntimeSampler bridges runtime/metrics into the registry: GC pause
// and scheduler latency distributions (diffed from the runtime's
// cumulative histograms into obs Histograms), heap live/goal gauges,
// goroutine count, GC cycle count, and the CPU fraction spent in GC
// mark assists — the signal behind the docs/PERF.md latency cliff.
// Gauges refresh lazily at scrape time (rate-limited) plus on a
// background ticker, so values stay fresh even when nobody scrapes.
// A nil *RuntimeSampler accepts the full API as a no-op.
type RuntimeSampler struct {
	pause *Histogram // smiler_runtime_gc_pause_seconds
	sched *Histogram // smiler_runtime_sched_latency_seconds

	mu         sync.Mutex // serializes Sample (prev-state diffing)
	samples    []rtm.Sample
	prevPause  []uint64
	prevSched  []uint64
	prevAssist float64
	prevWall   time.Time

	lastSample atomic.Int64 // unix nanos of the last Sample

	heapLive    atomic.Uint64
	heapGoal    atomic.Uint64
	goroutines  atomic.Uint64
	gcCycles    atomic.Uint64
	assistBits  atomic.Uint64 // float64 bits, cumulative assist cpu-seconds
	assistFrac  atomic.Uint64 // float64 bits, assist CPU fraction over the last window
	lastPauseNs atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRuntimeSampler builds the sampler, registers its instruments on
// reg and takes one initial sample. Returns nil on a nil registry so
// a disabled system carries no sampler at all.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	s := &RuntimeSampler{
		pause: reg.Histogram("smiler_runtime_gc_pause_seconds",
			"Distribution of GC stop-the-world pauses.", GCPauseBuckets),
		sched: reg.Histogram("smiler_runtime_sched_latency_seconds",
			"Distribution of goroutine scheduling latencies.", GCPauseBuckets),
		samples: []rtm.Sample{
			{Name: rmGCPauses},
			{Name: rmSchedLat},
			{Name: rmHeapLive},
			{Name: rmHeapGoal},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmAssistCPU},
		},
		stop: make(chan struct{}),
	}
	reg.GaugeFunc("smiler_runtime_heap_live_bytes",
		"Live heap after the last GC mark phase.",
		func() float64 { s.maybeSample(); return float64(s.heapLive.Load()) })
	reg.GaugeFunc("smiler_runtime_heap_goal_bytes",
		"Heap size the GC pacer is steering toward.",
		func() float64 { s.maybeSample(); return float64(s.heapGoal.Load()) })
	reg.GaugeFunc("smiler_runtime_goroutines",
		"Live goroutines.",
		func() float64 { s.maybeSample(); return float64(s.goroutines.Load()) })
	reg.CounterFunc("smiler_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { s.maybeSample(); return float64(s.gcCycles.Load()) })
	reg.CounterFunc("smiler_runtime_gc_assist_cpu_seconds_total",
		"Cumulative CPU seconds user goroutines spent assisting the GC mark phase.",
		func() float64 { s.maybeSample(); return math.Float64frombits(s.assistBits.Load()) })
	reg.GaugeFunc("smiler_runtime_gc_assist_fraction",
		"Fraction of available CPU spent in GC mark assists over the last sampling window.",
		func() float64 { s.maybeSample(); return math.Float64frombits(s.assistFrac.Load()) })
	reg.GaugeFunc("smiler_runtime_last_gc_pause_seconds",
		"Duration of the most recent GC stop-the-world pause.",
		func() float64 { s.maybeSample(); return float64(s.lastPauseNs.Load()) / 1e9 })
	s.Sample()
	return s
}

// Start launches the background sampling loop (interval <= 0 takes
// DefaultRuntimeInterval). Nil-safe; call Stop to end the loop.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop ends the background loop (idempotent, nil-safe). The sampler
// keeps answering scrape-time refreshes afterwards.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// maybeSample refreshes the telemetry unless a sample already ran
// within minRuntimeRefresh — the scrape-time path.
func (s *RuntimeSampler) maybeSample() {
	if s == nil {
		return
	}
	if time.Since(time.Unix(0, s.lastSample.Load())) < minRuntimeRefresh {
		return
	}
	s.Sample()
}

// Sample reads runtime/metrics once and folds the deltas into the
// registry instruments. Safe for concurrent use; nil-safe.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	rtm.Read(s.samples)
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Name {
		case rmGCPauses:
			if sm.Value.Kind() == rtm.KindFloat64Histogram {
				s.prevPause = bridgeHistogram(s.pause, sm.Value.Float64Histogram(), s.prevPause)
			}
		case rmSchedLat:
			if sm.Value.Kind() == rtm.KindFloat64Histogram {
				s.prevSched = bridgeHistogram(s.sched, sm.Value.Float64Histogram(), s.prevSched)
			}
		case rmHeapLive:
			if sm.Value.Kind() == rtm.KindUint64 {
				s.heapLive.Store(sm.Value.Uint64())
			}
		case rmHeapGoal:
			if sm.Value.Kind() == rtm.KindUint64 {
				s.heapGoal.Store(sm.Value.Uint64())
			}
		case rmGoroutines:
			if sm.Value.Kind() == rtm.KindUint64 {
				s.goroutines.Store(sm.Value.Uint64())
			}
		case rmGCCycles:
			if sm.Value.Kind() == rtm.KindUint64 {
				s.gcCycles.Store(sm.Value.Uint64())
			}
		case rmAssistCPU:
			if sm.Value.Kind() == rtm.KindFloat64 {
				assist := sm.Value.Float64()
				s.assistBits.Store(math.Float64bits(assist))
				if !s.prevWall.IsZero() {
					if window := now.Sub(s.prevWall).Seconds() * float64(runtime.GOMAXPROCS(0)); window > 0 {
						frac := (assist - s.prevAssist) / window
						if frac < 0 {
							frac = 0
						}
						s.assistFrac.Store(math.Float64bits(frac))
					}
				}
				s.prevAssist = assist
			}
		}
	}
	s.prevWall = now
	// runtime/metrics has no "most recent pause" sample; MemStats does.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.NumGC > 0 {
		s.lastPauseNs.Store(ms.PauseNs[(ms.NumGC+255)%256])
	}
	s.lastSample.Store(now.UnixNano())
}

// Stats returns the headline snapshot for /healthz (atomic loads only,
// no runtime/metrics read beyond the rate-limited refresh).
func (s *RuntimeSampler) Stats() RuntimeStats {
	if s == nil {
		return RuntimeStats{}
	}
	s.maybeSample()
	return RuntimeStats{
		LastGCPauseMs: float64(s.lastPauseNs.Load()) / 1e6,
		HeapLiveBytes: s.heapLive.Load(),
		HeapGoalBytes: s.heapGoal.Load(),
		Goroutines:    s.goroutines.Load(),
		GCCycles:      s.gcCycles.Load(),
	}
}

// bridgeHistogram folds the growth of a cumulative runtime histogram
// since prev into h, observing each new sample at its bucket midpoint,
// and returns the updated cumulative counts for the next diff.
func bridgeHistogram(h *Histogram, src *rtm.Float64Histogram, prev []uint64) []uint64 {
	if src == nil {
		return prev
	}
	if len(prev) != len(src.Counts) {
		prev = make([]uint64, len(src.Counts))
		// First sight of this histogram: everything accumulated before
		// the sampler existed counts as new (process start ≈ sampler
		// start in practice).
	}
	for i, c := range src.Counts {
		d := c - prev[i]
		if d == 0 || d > c { // d > c: the runtime reset (cannot happen today; be safe)
			prev[i] = c
			continue
		}
		lo, hi := src.Buckets[i], src.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi / 2
		case math.IsInf(hi, 1):
			mid = lo
		}
		h.ObserveN(mid, d)
		prev[i] = c
	}
	return prev
}
