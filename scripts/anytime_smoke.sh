#!/usr/bin/env sh
# Anytime smoke test: boot one smiler-server per deadline rung with the
# progressive (anytime) search engine on, drive forecast-heavy load,
# and assert the quality ladder behaves:
#
#   - moderate deadline: zero errors, zero AR(1) fallbacks — every
#     answer comes from the real pipeline (exact or progressive);
#   - aggressive deadline: zero errors and a nonzero number of
#     progressive (deadline-truncated) answers — the engine degrades
#     by answering early, not by falling off the pipeline;
#   - the per-quality prediction counters are live on /metrics.
#
# The quality-rate assertions run through the loader's own SLO gate
# (forecast.fallback_rate<=0, forecast.progressive_rate>=...), so this
# smoke also exercises the ">=" floor grammar end to end. Run via
# `make anytime-smoke`.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/smiler-server"
LOADER="$DIR/smilerloader"
PORT=19171
URL="http://127.0.0.1:$PORT"

go build -o "$BIN" ./cmd/smiler-server
go build -o "$LOADER" ./cmd/smilerloader

SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

# run_rung <name> <deadline> <slo> — boot the server with the given
# -predict-deadline, drive forecast-heavy load SLO-gated, snapshot
# /metrics, shut the server down. Leaves the report in $DIR/<name>.json
# and the metrics scrape in $DIR/<name>.metrics.
run_rung() {
    name=$1
    deadline=$2
    slo=$3
    "$BIN" -addr "127.0.0.1:$PORT" -predictor gp \
        -anytime -learned-lb \
        -predict-deadline "$deadline" -degraded-fallback ar1 \
        -log-level warn &
    SRV_PID=$!
    i=0
    until curl -sf "$URL/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "anytime-smoke: server for $name rung did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
    if ! "$LOADER" \
        -targets "$URL" \
        -sensors 24 -history 2048 -seed 7 -prefix "any$name" \
        -mix 1:8 -horizons 1:4,3:1 \
        -arrival closed -concurrency 8 \
        -duration 10s -progress 5s \
        -slo "$slo" \
        -out "$DIR/$name.json"; then
        echo "anytime-smoke: $name rung violated its SLOs" >&2
        cat "$DIR/$name.json" >&2 || true
        exit 1
    fi
    curl -sf "$URL/metrics" >"$DIR/$name.metrics"
    kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
}

# Moderate rung: the deadline is comfortably above a full search, so
# nothing may error and nothing may reach the AR(1) fallback.
run_rung moderate 2s 'error_rate<=0,forecast.fallback_rate<=0'

# Aggressive rung: the deadline truncates searches mid-verification,
# so a visible fraction of answers must be progressive — and still
# zero errors: deadline pressure degrades quality, never availability.
run_rung aggressive 1ms 'error_rate<=0,forecast.progressive_rate>=0.01'

status=0
if ! grep -q '"exact":' "$DIR/moderate.json"; then
    echo "anytime-smoke: moderate rung produced no exact answers" >&2
    status=1
fi
if grep -q '"fallback":' "$DIR/moderate.json"; then
    echo "anytime-smoke: moderate rung hit the AR(1) fallback" >&2
    status=1
fi
if ! grep -q '"progressive":' "$DIR/aggressive.json"; then
    echo "anytime-smoke: aggressive rung produced no progressive answers" >&2
    status=1
fi
if ! grep -q 'smiler_predictions_total{quality="exact"}' "$DIR/moderate.metrics"; then
    echo "anytime-smoke: /metrics missing per-quality prediction counter" >&2
    status=1
fi
if ! grep -q 'smiler_anytime_quality_estimate' "$DIR/aggressive.metrics"; then
    echo "anytime-smoke: /metrics missing quality-estimate histogram" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "anytime-smoke: OK"
else
    echo "--- moderate report ---" >&2
    cat "$DIR/moderate.json" >&2
    echo "--- aggressive report ---" >&2
    cat "$DIR/aggressive.json" >&2
fi
exit $status
