package server

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"smiler/internal/obs"
)

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// withObservability wraps the mux with the request-scoped
// observability: a request ID (echoed as X-Request-Id, honoring one
// supplied by the client), a distributed trace context (parsed from
// X-Smiler-Trace on forwarded traffic, minted otherwise, echoed on the
// response and injected into the request context so prediction traces
// carry it), a structured per-request log line when a logger is
// configured, and the HTTP request counter/latency histogram labeled
// by normalized route.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", reqID)
		tc, fromPeer := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
		if !fromPeer {
			tc = obs.TraceContext{ID: obs.NewTraceID()}
		}
		tc.Node = s.nodeID
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tc))
		w.Header().Set(obs.TraceHeader, tc.HeaderValue())
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		route := normalizeRoute(r.URL.Path)
		if reg := s.sys.Metrics(); reg != nil {
			reg.Counter("smiler_http_requests_total",
				"HTTP requests by route, method and status.",
				obs.L("route", route), obs.L("method", r.Method),
				obs.L("status", strconv.Itoa(rec.status))).Inc()
			reg.Histogram("smiler_http_request_seconds",
				"HTTP request latency by route and status code.", nil,
				obs.L("route", route),
				obs.L("code", strconv.Itoa(rec.status))).Observe(elapsed.Seconds())
		}
		if s.log != nil {
			s.log.Info("request",
				"id", reqID,
				"trace", tc.ID,
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"latency", elapsed,
			)
		}
	})
}

// normalizeRoute collapses the sensor id out of a path so metric
// label cardinality stays bounded by the route table, not the sensor
// population.
func normalizeRoute(path string) string {
	if rest, ok := strings.CutPrefix(path, "/sensors/"); ok && rest != "" {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return "/sensors/{id}/" + rest[i+1:]
		}
		return "/sensors/{id}"
	}
	if rest, ok := strings.CutPrefix(path, "/debug/trace/"); ok && rest != "" {
		return "/debug/trace/{sensor}"
	}
	return path
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format. 404 when the system was built with metrics disabled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	reg := s.sys.Metrics()
	if reg == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// handleTrace serves GET /debug/trace/{sensor}[?n=k]: the last n
// (default all stored, newest first) prediction traces of the sensor,
// each with its per-phase spans and kNN stats.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	store := s.sys.Traces()
	if store == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	// Trim from the escaped path and unescape afterwards, so sensor ids
	// containing "/" or "%" (sent percent-encoded) resolve — the same
	// treatment the cluster proxy applies when it forwards by sensor.
	id, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/debug/trace/"))
	if err != nil || id == "" {
		writeError(w, http.StatusBadRequest, "missing or malformed sensor id")
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, "invalid n "+strconv.Quote(v))
			return
		}
		n = parsed
	}
	traces := store.Last(id, n)
	if len(traces) == 0 && !s.sys.HasSensor(id) {
		writeError(w, http.StatusNotFound, "unknown sensor "+strconv.Quote(id))
		return
	}
	if traces == nil {
		traces = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// EventsResponse is the GET /debug/events body: the flight recorder's
// high-water mark plus the retained events after ?since= (oldest
// first), so a poller can tail the ring with since=<last_seq>.
type EventsResponse struct {
	LastSeq uint64      `json:"last_seq"`
	Events  []obs.Event `json:"events"`
}

// handleEvents serves GET /debug/events[?since=seq][&n=max]: the
// flight recorder's retained events. 404 when metrics are disabled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	ring := s.sys.Events()
	if ring == nil {
		writeError(w, http.StatusNotFound, "events disabled")
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since "+strconv.Quote(v))
			return
		}
		since = parsed
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, "invalid n "+strconv.Quote(v))
			return
		}
		n = parsed
	}
	evs := ring.Since(since, n)
	if evs == nil {
		evs = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{LastSeq: ring.LastSeq(), Events: evs})
}

// setSpanSummary attaches the just-recorded trace's compact span
// summary to the response of a forwarded request (hop > 0), so the
// entry node can inline this node's phase spans into its hop trace.
// The trace is matched by distributed trace id: a coalesced or cached
// answer that did not run this request's pipeline simply sets nothing.
func (s *Server) setSpanSummary(w http.ResponseWriter, r *http.Request, id string) {
	tc, ok := obs.TraceFromContext(r.Context())
	if !ok || tc.Hop == 0 {
		return
	}
	for _, tr := range s.sys.Traces().Last(id, 4) {
		if tr.TraceID == tc.ID {
			w.Header().Set(obs.SpanSummaryHeader, obs.EncodeSpans(tr.Spans))
			return
		}
	}
}
