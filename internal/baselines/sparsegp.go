package baselines

import (
	"fmt"

	"smiler/internal/gp"
	"smiler/internal/mat"
)

// InducingStrategy selects the sparse GP's inducing (active) points.
type InducingStrategy int

const (
	// InducingSubsample takes an even subsample of the training set —
	// the PSGP-style projection onto "active points".
	InducingSubsample InducingStrategy = iota
	// InducingFarthest greedily picks mutually distant training points
	// (farthest-point traversal) — a cheap stand-in for variational
	// inducing-point optimization (VLGP).
	InducingFarthest
)

// SparseGP is a low-rank Gaussian Process: the Deterministic Training
// Conditional approximation conditioned on m inducing points. Both
// PSGP and VLGP instantiate it, differing in the inducing selection.
// Its training cost is O(n·m²), the knob Fig. 13 sweeps.
type SparseGP struct {
	name     string
	M        int // number of inducing/active points
	Strategy InducingStrategy

	hyper    gp.Hyper
	inducing [][]float64
	alpha    []float64     // Q⁻¹·K_mn·y / σ²
	cholKmm  *mat.Cholesky // for the explained-variance term
	cholQ    *mat.Cholesky // Q = K_mm + K_mn·K_nm/σ²
	dim      int
	trained  bool
}

// NewPSGP builds a projected sparse GP with m active points [25].
func NewPSGP(m int) *SparseGP {
	return &SparseGP{name: "PSGP", M: m, Strategy: InducingSubsample}
}

// NewVLGP builds a sparse GP with variational-style inducing point
// selection and m inducing inputs [65].
func NewVLGP(m int) *SparseGP {
	return &SparseGP{name: "VLGP", M: m, Strategy: InducingFarthest}
}

// Name implements Regressor.
func (s *SparseGP) Name() string { return s.name }

// Train implements Regressor.
func (s *SparseGP) Train(x [][]float64, y []float64) error {
	dim, err := checkTraining(x, y)
	if err != nil {
		return err
	}
	if s.M <= 0 {
		return fmt.Errorf("baselines: %s needs a positive number of inducing points, got %d", s.name, s.M)
	}
	s.dim = dim
	s.hyper = gp.HeuristicHyper(x, y)

	m := s.M
	if m > len(x) {
		m = len(x)
	}
	switch s.Strategy {
	case InducingFarthest:
		s.inducing = farthestPoints(x, m)
	default:
		s.inducing = subsample(x, m)
	}

	sigma2 := s.hyper.Noise * s.hyper.Noise
	kmm := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := s.hyper.Cov(s.inducing[i], s.inducing[j])
			if i == j {
				v += 1e-8 // jitter
			}
			kmm.Set(i, j, v)
			kmm.Set(j, i, v)
		}
	}
	// Accumulate A = K_mn·K_nm and b = K_mn·y in one pass over the
	// training data: O(n·m²), the dominant cost.
	a := mat.NewDense(m, m)
	b := make([]float64, m)
	kcol := make([]float64, m)
	for t := range x {
		for i := 0; i < m; i++ {
			kcol[i] = s.hyper.Cov(s.inducing[i], x[t])
		}
		for i := 0; i < m; i++ {
			arow := a.Row(i)
			ki := kcol[i]
			for j := 0; j < m; j++ {
				arow[j] += ki * kcol[j]
			}
			b[i] += ki * y[t]
		}
	}
	q := kmm.Clone()
	for i := 0; i < m; i++ {
		qrow := q.Row(i)
		arow := a.Row(i)
		for j := 0; j < m; j++ {
			qrow[j] += arow[j] / sigma2
		}
	}
	cholQ, err := mat.NewCholesky(q)
	if err != nil {
		return fmt.Errorf("baselines: %s Q factorization: %w", s.name, err)
	}
	cholKmm, err := mat.NewCholesky(kmm)
	if err != nil {
		return fmt.Errorf("baselines: %s K_mm factorization: %w", s.name, err)
	}
	alpha, err := cholQ.SolveVec(b)
	if err != nil {
		return err
	}
	for i := range alpha {
		alpha[i] /= sigma2
	}
	s.alpha = alpha
	s.cholQ = cholQ
	s.cholKmm = cholKmm
	s.trained = true
	return nil
}

// Predict implements Regressor with the DTC predictive equations:
// mean = k*ᵀα, var = k** − k*ᵀK_mm⁻¹k* + k*ᵀQ⁻¹k* + σ².
func (s *SparseGP) Predict(x []float64) (Prediction, error) {
	if !s.trained {
		return Prediction{}, ErrNotTrained
	}
	if len(x) != s.dim {
		return Prediction{}, fmt.Errorf("%w: got %d features, want %d", ErrDims, len(x), s.dim)
	}
	m := len(s.inducing)
	ks := make([]float64, m)
	for i := 0; i < m; i++ {
		ks[i] = s.hyper.Cov(s.inducing[i], x)
	}
	mean := mat.Dot(ks, s.alpha)
	vk, err := s.cholKmm.SolveVec(ks)
	if err != nil {
		return Prediction{}, err
	}
	vq, err := s.cholQ.SolveVec(ks)
	if err != nil {
		return Prediction{}, err
	}
	prior := s.hyper.Signal * s.hyper.Signal
	variance := prior - mat.Dot(ks, vk) + mat.Dot(ks, vq) + s.hyper.Noise*s.hyper.Noise
	if variance < varFloor {
		variance = varFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}

// subsample takes m evenly spaced rows.
func subsample(x [][]float64, m int) [][]float64 {
	out := make([][]float64, 0, m)
	if m >= len(x) {
		return append(out, x...)
	}
	step := float64(len(x)) / float64(m)
	for i := 0; i < m; i++ {
		out = append(out, x[int(float64(i)*step)])
	}
	return out
}

// farthestPoints greedily picks m mutually distant rows (2-approx of
// the k-center objective), giving the inducing set broad coverage.
func farthestPoints(x [][]float64, m int) [][]float64 {
	n := len(x)
	if m >= n {
		return append([][]float64(nil), x...)
	}
	chosen := make([]int, 0, m)
	chosen = append(chosen, 0)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(x[i], x[0])
	}
	for len(chosen) < m {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if d := sqDist(x[i], x[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	out := make([][]float64, m)
	for i, idx := range chosen {
		out[i] = x[idx]
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
