package gpusim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testDevice(t testing.TB) *Device {
	t.Helper()
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("NewDevice should reject bad config")
	}
}

func TestMustNewDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := DefaultConfig()
	bad.ClockHz = 0
	MustNewDevice(bad)
}

func TestMallocFreeAccounting(t *testing.T) {
	d := testDevice(t)
	b1, err := d.Malloc("idx", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.UsedBytes() != 1024 || b1.Bytes() != 1024 || b1.Label() != "idx" {
		t.Fatal("accounting wrong after Malloc")
	}
	if err := d.Free(b1); err != nil {
		t.Fatal(err)
	}
	if d.UsedBytes() != 0 {
		t.Fatal("accounting wrong after Free")
	}
	if err := d.Free(b1); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free err = %v", err)
	}
	if err := d.Free(nil); err == nil {
		t.Fatal("freeing nil should error")
	}
	if _, err := d.Malloc("neg", -1); err == nil {
		t.Fatal("negative malloc should error")
	}
}

func TestMallocOutOfMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GlobalMemBytes = 100
	d := MustNewDevice(cfg)
	if _, err := d.Malloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc("b", 60); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if d.TotalBytes() != 100 {
		t.Fatal("TotalBytes wrong")
	}
}

func TestLaunchRunsEveryBlockOnce(t *testing.T) {
	d := testDevice(t)
	const grid = 257
	var seen [grid]atomic.Int32
	err := d.Launch(grid, func(b *Block) error {
		seen[b.ID].Add(1)
		b.Compute(10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("block %d ran %d times", i, seen[i].Load())
		}
	}
	if d.BlocksRun() != grid || d.Launches() != 1 {
		t.Fatal("launch counters wrong")
	}
	if d.SimSeconds() <= 0 {
		t.Fatal("simulated time should be positive")
	}
}

func TestLaunchErrors(t *testing.T) {
	d := testDevice(t)
	if err := d.Launch(0, func(b *Block) error { return nil }); err == nil {
		t.Fatal("grid 0 should error")
	}
	sentinel := errors.New("kernel boom")
	err := d.Launch(8, func(b *Block) error {
		if b.ID == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestCostModelAccumulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LaunchOverheadCycles = 0
	cfg.SMs = 1
	cfg.ClockHz = 1 // 1 cycle == 1 second for easy math
	d := MustNewDevice(cfg)
	err := d.Launch(1, func(b *Block) error {
		b.Compute(10)     // 10 cycles
		b.GlobalAccess(2) // 2*4 = 8
		b.SharedAccess(5) // 5
		b.Diverge(3, 4)   // 7
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 + 8 + 5 + 7
	if got := d.SimSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SimSeconds = %v, want %v", got, want)
	}
	d.ResetTimer()
	if d.SimSeconds() != 0 || d.Launches() != 0 || d.BlocksRun() != 0 {
		t.Fatal("ResetTimer incomplete")
	}
}

func TestParallelComputeWaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LaunchOverheadCycles = 0
	cfg.SMs = 1
	cfg.ClockHz = 1
	cfg.CoresPerSM = 32
	d := MustNewDevice(cfg)
	err := d.Launch(1, func(b *Block) error {
		b.ParallelCompute(33, 10) // 2 waves × 10 ops
		b.ParallelCompute(0, 10)  // no-op
		b.ParallelCompute(4, 0)   // no-op
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SimSeconds(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("SimSeconds = %v, want 20", got)
	}
}

func TestAllocShared(t *testing.T) {
	d := testDevice(t)
	err := d.Launch(1, func(b *Block) error {
		if err := b.AllocShared(40 << 10); err != nil {
			return err
		}
		if b.SharedUsed() != 40<<10 {
			t.Error("SharedUsed wrong")
		}
		if err := b.AllocShared(16 << 10); !errors.Is(err, ErrSharedMemExceeded) {
			t.Errorf("over-allocation err = %v", err)
		}
		if err := b.AllocShared(-1); err == nil {
			t.Error("negative shared alloc should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKSelectBlockBasic(t *testing.T) {
	d := testDevice(t)
	dists := []float64{5, 1, 4, 2, 3}
	var got []KSelectResult
	if err := d.Launch(1, func(b *Block) error {
		got = KSelectBlock(b, dists, 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i, r := range got {
		if r.Index != wantIdx[i] {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestKSelectBlockSkipsInfAndNaN(t *testing.T) {
	d := testDevice(t)
	inf := math.Inf(1)
	dists := []float64{inf, 2, math.NaN(), 1, inf}
	var got []KSelectResult
	if err := d.Launch(1, func(b *Block) error {
		got = KSelectBlock(b, dists, 4)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Index != 3 || got[1].Index != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestKSelectBlockDegenerate(t *testing.T) {
	d := testDevice(t)
	if err := d.Launch(1, func(b *Block) error {
		if KSelectBlock(b, nil, 3) != nil {
			t.Error("empty input should return nil")
		}
		if KSelectBlock(b, []float64{1}, 0) != nil {
			t.Error("k=0 should return nil")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: KSelectBlock returns exactly the k smallest values in
// ascending order, agreeing with a full sort.
func TestQuickKSelectAgreesWithSort(t *testing.T) {
	d := testDevice(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = math.Round(rng.Float64()*1000) / 10 // ties likely
		}
		var got []KSelectResult
		if err := d.Launch(1, func(b *Block) error {
			got = KSelectBlock(b, dists, k)
			return nil
		}); err != nil {
			return false
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i, r := range got {
			if r.Value != sorted[i] {
				return false
			}
			if dists[r.Index] != r.Value {
				return false
			}
			if i > 0 && got[i-1].Value > r.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLaunch1024Blocks(b *testing.B) {
	d := testDevice(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Launch(1024, func(blk *Block) error {
			blk.Compute(100)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSelect4096(b *testing.B) {
	d := testDevice(b)
	rng := rand.New(rand.NewSource(42))
	dists := make([]float64, 4096)
	for i := range dists {
		dists[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Launch(1, func(blk *Block) error {
			KSelectBlock(blk, dists, 32)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
