package core

import (
	"errors"
	"fmt"
	"math"
)

// Cell is one entry λ_{i,j} of the ensemble matrix (Eqn. 2): a
// predictor bound to a specific (k, d) pair plus its adaptive weight
// and sleep state.
type Cell struct {
	K    int // number of nearest neighbours (from EKV)
	D    int // item query length (from ELV)
	Pred Predictor

	weight float64

	// Sleep & recovery state (Section 5.1.2).
	sleeping   bool
	sleepLeft  int // steps remaining before recovery
	sleepSpan  int // ς_{i,j}: the adaptive sleep duration
	wokeLately bool

	// recoveredNow marks a cell that woke up during the current
	// schedule pass; always false outside (*Ensemble).schedule.
	recoveredNow bool
}

// Weight returns the cell's current normalized ensemble weight (zero
// while sleeping).
func (c *Cell) Weight() float64 {
	if c.sleeping {
		return 0
	}
	return c.weight
}

// Sleeping reports whether the cell is currently asleep.
func (c *Cell) Sleeping() bool { return c.sleeping }

// SleepSpan returns the adaptive sleep duration ς.
func (c *Cell) SleepSpan() int { return c.sleepSpan }

// EnsembleConfig tunes the auto-tuning behaviour; zero value = the
// paper's full mechanism.
type EnsembleConfig struct {
	// DisableAdaptation freezes the weights at uniform — the
	// "SMiLerNS" ablation of Fig. 11 (ensemble without self-adaptive
	// prediction).
	DisableAdaptation bool
	// DisableSleep turns off the sleep-and-recovery scheduler.
	DisableSleep bool
}

// Ensemble is the matrix of semi-lazy predictors f_{i,j} with the
// adaptive auto-tuning mechanism: the final prediction is the
// λ-weighted mixture of the per-cell posteriors (Eqn. 3), the weights
// are exponentially-smoothed posterior probabilities of the cells
// (Eqns. 6–9), and persistently weak cells sleep with doubling
// backoff (Section 5.1.2).
type Ensemble struct {
	cells []*Cell
	cfg   EnsembleConfig
	eta   float64   // sleep threshold η = 1/(2·n·m)
	lik   []float64 // reweight scratch, reused across steps
}

// NewEnsemble builds the m×n ensemble over EKV × ELV; factory is
// called once per cell so stateful predictors (GP warm starts) stay
// cell-local. Weights start uniform.
func NewEnsemble(ekv, elv []int, factory PredictorFactory, cfg EnsembleConfig) (*Ensemble, error) {
	if len(ekv) == 0 || len(elv) == 0 {
		return nil, errors.New("core: empty EKV or ELV")
	}
	for _, k := range ekv {
		if k <= 0 {
			return nil, fmt.Errorf("core: non-positive k=%d in EKV", k)
		}
	}
	for _, d := range elv {
		if d <= 0 {
			return nil, fmt.Errorf("core: non-positive d=%d in ELV", d)
		}
	}
	if factory == nil {
		return nil, errors.New("core: nil predictor factory")
	}
	e := &Ensemble{cfg: cfg}
	total := len(ekv) * len(elv)
	e.eta = 1 / (2 * float64(total))
	w := 1 / float64(total)
	for _, k := range ekv {
		for _, d := range elv {
			e.cells = append(e.cells, &Cell{
				K: k, D: d, Pred: factory(), weight: w, sleepSpan: 1,
			})
		}
	}
	return e, nil
}

// Cells returns the ensemble cells (callers must not mutate them).
func (e *Ensemble) Cells() []*Cell { return e.cells }

// Eta returns the sleep threshold η.
func (e *Ensemble) Eta() float64 { return e.eta }

// MaxK returns the largest k of any cell — the k the Suffix kNN Search
// must retrieve so every cell can take its prefix.
func (e *Ensemble) MaxK() int {
	mx := 0
	for _, c := range e.cells {
		if c.K > mx {
			mx = c.K
		}
	}
	return mx
}

// CellPrediction pairs a cell with its posterior for one step.
type CellPrediction struct {
	Cell *Cell
	Pred Prediction
}

// Mix combines per-cell predictions into the ensemble posterior
// (Eqn. 3). The mixture of Gaussians is summarized by its exact first
// two moments: mean = Σwᵤ·uᵢ, variance = Σw·(σᵢ²+uᵢ²) − mean².
func (e *Ensemble) Mix(preds []CellPrediction) (Prediction, error) {
	var wsum float64
	for _, cp := range preds {
		if cp.Cell.sleeping {
			continue
		}
		wsum += cp.Cell.weight
	}
	if wsum <= 0 {
		return Prediction{}, errors.New("core: no awake predictors to mix")
	}
	var mean, second float64
	for _, cp := range preds {
		if cp.Cell.sleeping {
			continue
		}
		w := cp.Cell.weight / wsum
		mean += w * cp.Pred.Mean
		second += w * (cp.Pred.Variance + cp.Pred.Mean*cp.Pred.Mean)
	}
	variance := second - mean*mean
	if variance < varianceFloor {
		variance = varianceFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}

// Update adjusts the ensemble after the true value y is observed,
// given the per-cell predictions that were made for that time step:
// each awake cell's weight absorbs its normalized likelihood
// (Eqns. 8–9), then the sleep scheduler runs. Sleeping cells tick
// toward recovery; cells that recover re-enter at weight η.
func (e *Ensemble) Update(preds []CellPrediction, y float64) {
	if !e.cfg.DisableAdaptation {
		e.reweight(preds, y)
	}
	if !e.cfg.DisableSleep {
		e.schedule()
	}
}

// reweight implements Eqns. 6–9: λ̄ᵢⱼ = λᵢⱼ + lᵢⱼ/Σl, then renormalize
// over the awake cells.
func (e *Ensemble) reweight(preds []CellPrediction, y float64) {
	var lsum float64
	if cap(e.lik) < len(preds) {
		e.lik = make([]float64, len(preds))
	}
	lik := e.lik[:len(preds)]
	for i := range lik {
		lik[i] = 0
	}
	for i, cp := range preds {
		if cp.Cell.sleeping || !cp.Pred.Valid() {
			continue
		}
		l := math.Exp(cp.Pred.LogLikelihood(y))
		if math.IsNaN(l) || math.IsInf(l, 0) {
			l = 0
		}
		lik[i] = l
		lsum += l
	}
	if lsum > 0 {
		for i, cp := range preds {
			if cp.Cell.sleeping {
				continue
			}
			cp.Cell.weight += lik[i] / lsum
		}
	}
	e.normalize()
}

// normalize rescales the awake cells' weights to sum to one.
func (e *Ensemble) normalize() {
	var sum float64
	for _, c := range e.cells {
		if !c.sleeping {
			sum += c.weight
		}
	}
	if sum <= 0 {
		// Degenerate: reset awake cells to uniform.
		var awake int
		for _, c := range e.cells {
			if !c.sleeping {
				awake++
			}
		}
		if awake == 0 {
			return
		}
		w := 1 / float64(awake)
		for _, c := range e.cells {
			if !c.sleeping {
				c.weight = w
			}
		}
		return
	}
	for _, c := range e.cells {
		if !c.sleeping {
			c.weight /= sum
		}
	}
}

// schedule runs the sleep/recovery pass: weak awake cells go to sleep
// (with ς doubling if they fell straight back asleep after a
// recovery), sleeping cells tick toward recovery, and recovered cells
// re-enter at weight η (after normalization).
func (e *Ensemble) schedule() {
	// 1. Tick sleepers and mark recoveries (the recoveredNow flag
	// replaces the old O(cells²) membership scans).
	recovered := 0
	for _, c := range e.cells {
		if !c.sleeping {
			continue
		}
		c.sleepLeft--
		if c.sleepLeft <= 0 {
			c.sleeping = false
			c.wokeLately = true
			c.recoveredNow = true
			recovered++
		}
	}

	// 2. Put weak awake cells to sleep — but never the last one.
	awake := 0
	for _, c := range e.cells {
		if !c.sleeping {
			awake++
		}
	}
	slept := false
	for _, c := range e.cells {
		if c.sleeping || awake <= 1 {
			continue
		}
		if c.recoveredNow {
			// Freshly recovered this step; give it one step to prove
			// itself before it can be re-evaluated.
			continue
		}
		if c.weight < e.eta {
			c.sleeping = true
			if c.wokeLately {
				// Fell back asleep right after recovery: double ς.
				c.sleepSpan *= 2
			}
			c.wokeLately = false
			c.sleepLeft = c.sleepSpan
			awake--
			slept = true
		} else if c.wokeLately {
			// Survived the step after recovery: start halving ς.
			c.sleepSpan /= 2
			if c.sleepSpan < 1 {
				c.sleepSpan = 1
			}
			if c.sleepSpan == 1 {
				c.wokeLately = false
			}
		} else if c.sleepSpan > 1 {
			c.sleepSpan /= 2
		}
	}

	// 3. Re-admit recovered cells: Section 5.1.2 gives each recovered
	// predictor pre-normalization weight η/(1−κη), which after
	// normalization is exactly η. Equivalently: rescale the incumbents
	// to total 1−κη and set each recovered cell to η.
	if recovered > 0 {
		kappa := float64(recovered)
		target := 1 - kappa*e.eta
		if target < e.eta {
			target = e.eta // pathological κ: keep weights positive
		}
		var sumOthers float64
		for _, c := range e.cells {
			if !c.sleeping && !c.recoveredNow {
				sumOthers += c.weight
			}
		}
		if sumOthers > 0 {
			scale := target / sumOthers
			for _, c := range e.cells {
				if !c.sleeping && !c.recoveredNow {
					c.weight *= scale
				}
			}
		}
		for _, c := range e.cells {
			if c.recoveredNow {
				c.weight = e.eta
				c.recoveredNow = false
			}
		}
		slept = true // force the final renormalization below
	}
	if slept {
		e.normalize()
	}
}

// CellState is the serializable auto-tuning state of one cell, used by
// checkpointing.
type CellState struct {
	K, D       int
	Weight     float64
	Sleeping   bool
	SleepLeft  int
	SleepSpan  int
	WokeLately bool
}

// ExportState captures every cell's auto-tuning state in cell order.
func (e *Ensemble) ExportState() []CellState {
	out := make([]CellState, len(e.cells))
	for i, c := range e.cells {
		out[i] = CellState{
			K: c.K, D: c.D, Weight: c.weight, Sleeping: c.sleeping,
			SleepLeft: c.sleepLeft, SleepSpan: c.sleepSpan, WokeLately: c.wokeLately,
		}
	}
	return out
}

// ImportState restores auto-tuning state captured by ExportState.
// States are matched to cells by (K, D); unknown states are ignored
// and unmatched cells keep their current state.
func (e *Ensemble) ImportState(states []CellState) error {
	byKD := make(map[[2]int]CellState, len(states))
	for _, st := range states {
		if st.SleepSpan < 1 || st.Weight < 0 {
			return fmt.Errorf("core: invalid cell state %+v", st)
		}
		byKD[[2]int{st.K, st.D}] = st
	}
	for _, c := range e.cells {
		st, ok := byKD[[2]int{c.K, c.D}]
		if !ok {
			continue
		}
		c.weight = st.Weight
		c.sleeping = st.Sleeping
		c.sleepLeft = st.SleepLeft
		c.sleepSpan = st.SleepSpan
		c.wokeLately = st.WokeLately
	}
	// The exported weights were already normalized, and the mix divides
	// by the participating weight sum anyway; renormalizing here would
	// divide by a sum an ulp away from one and perturb every weight,
	// so a checkpoint-restored ensemble would drift from the live one.
	// Only repair a degenerate import (no awake weight mass).
	var sum float64
	for _, c := range e.cells {
		if !c.sleeping {
			sum += c.weight
		}
	}
	if sum <= 0 {
		e.normalize()
	}
	return nil
}
