// Package scan implements the kNN-search baselines the paper compares
// the SMiLer Index against (Section 6.2.1):
//
//   - FastGPUScan: banded DTW between the query and every candidate
//     segment on the GPU, then block k-selection.
//   - GPUScan: the same without the Sakoe-Chiba constraint (full
//     warping matrix), after [Sart et al. 2010].
//   - FastCPUScan: single-threaded scan with the classic LB_Keogh
//     cascade and early-abandoning DTW [Keogh 2002; UCR suite 2012].
//   - DirLBen ("SMiLer-Dir"): computes the enhanced lower bound LBen
//     directly per candidate without the window-level index — the
//     strawman Fig. 8 compares the two-level index against.
//
// It also provides BruteKNN, a slow exact reference used by tests to
// validate every other search path.
package scan

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
)

// Result is one nearest neighbour: candidate segment c[T:T+len(query)]
// at DTW distance Dist.
type Result struct {
	T    int
	Dist float64
}

// chunk is the number of candidates one GPU block processes.
const chunk = 256

// maxStart returns the largest valid candidate start so that the
// segment and its h-step-ahead label both exist, or -1 if none.
func maxStart(n, d, h int) int {
	m := n - d - h
	if m < 0 {
		return -1
	}
	return m
}

func validateArgs(c, query []float64, k, h int) error {
	if len(query) == 0 {
		return fmt.Errorf("scan: empty query")
	}
	if len(c) == 0 {
		return fmt.Errorf("scan: empty series")
	}
	if k <= 0 {
		return fmt.Errorf("scan: k=%d must be positive", k)
	}
	if h <= 0 {
		return fmt.Errorf("scan: horizon h=%d must be positive", h)
	}
	return nil
}

// sortResults orders ascending by distance, ties by position.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].T < rs[j].T
	})
}

// BruteKNN is the exact reference: full banded DTW at every valid
// position, then a sort. O(n·d·ρ) per query; tests only.
func BruteKNN(c, query []float64, rho, k, h int) ([]Result, error) {
	if err := validateArgs(c, query, k, h); err != nil {
		return nil, err
	}
	d := len(query)
	mt := maxStart(len(c), d, h)
	var all []Result
	for t := 0; t <= mt; t++ {
		dist, err := dtw.Distance(query, c[t:t+d], rho)
		if err != nil {
			return nil, err
		}
		all = append(all, Result{T: t, Dist: dist})
	}
	sortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// FastGPUScan computes banded DTW between the query and every valid
// candidate on the simulated GPU (one block per chunk of candidates,
// compressed warping matrix in shared memory), then selects the k
// nearest with the block k-selection kernel.
func FastGPUScan(dev *gpusim.Device, c, query []float64, rho, k, h int) ([]Result, error) {
	return gpuScan(dev, c, query, rho, k, h)
}

// GPUScan is FastGPUScan without the Sakoe-Chiba constraint: the
// warping band spans the whole matrix, costing d² cells per candidate
// instead of d·(2ρ+1) — the [60]-style baseline of Fig. 7.
func GPUScan(dev *gpusim.Device, c, query []float64, k, h int) ([]Result, error) {
	return gpuScan(dev, c, query, len(query), k, h)
}

func gpuScan(dev *gpusim.Device, c, query []float64, rho, k, h int) ([]Result, error) {
	if err := validateArgs(c, query, k, h); err != nil {
		return nil, err
	}
	d := len(query)
	mt := maxStart(len(c), d, h)
	if mt < 0 {
		return nil, nil
	}
	n := mt + 1
	dists := make([]float64, n)
	grid := (n + chunk - 1) / chunk
	err := dev.Launch(grid, func(blk *gpusim.Block) error {
		lo := blk.ID * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := blk.AllocShared(8 * d); err != nil {
			return err
		}
		shared := 8 * dtw.CompressedScratchLen(rho)
		if shared > dev.Config().SharedMemPerBlock-blk.SharedUsed() {
			// An unbanded scan on a long query cannot keep the matrix
			// in shared memory; it spills to global, which the cost
			// model charges below (this is exactly why GPUScan loses).
			blk.GlobalAccess((hi - lo) * d * (2*rho + 1))
		} else if err := blk.AllocShared(shared); err != nil {
			return err
		}
		blk.GlobalAccess((hi - lo) * d)
		blk.ParallelCompute(hi-lo, d*(2*rho+1)*6)
		scratch := dtw.GetCompressedScratch(rho)
		defer dtw.PutCompressedScratch(scratch)
		for t := lo; t < hi; t++ {
			dist, err := dtw.DistanceCompressed(query, c[t:t+d], rho, scratch)
			if err != nil {
				return err
			}
			dists[t] = dist
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sel []gpusim.KSelectResult
	if err := dev.Launch(1, func(blk *gpusim.Block) error {
		sel = gpusim.KSelectBlock(blk, dists, k)
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]Result, len(sel))
	for i, s := range sel {
		out[i] = Result{T: s.Index, Dist: s.Value}
	}
	return out, nil
}

// CPUScanStats reports the pruning behaviour of FastCPUScan.
type CPUScanStats struct {
	Candidates     int // total candidate positions
	PrunedByLBKim  int // discarded by the O(1) endpoint bound
	PrunedByLBEQ   int // discarded by the query-envelope bound
	PrunedByLBEC   int // discarded by the data-envelope bound
	AbandonedEarly int // DTW started but abandoned against the running τ
	FullDTW        int // full DTW computations completed
}

// FastCPUScan is the single-threaded pruned scan with the UCR-style
// cascade: the O(1) LB_Kim endpoint bound, then LB_Keogh with the
// query envelope, then the data envelope, then early-abandoning banded
// DTW against the running k-th best distance.
func FastCPUScan(c, query []float64, rho, k, h int) ([]Result, CPUScanStats, error) {
	var st CPUScanStats
	if err := validateArgs(c, query, k, h); err != nil {
		return nil, st, err
	}
	d := len(query)
	mt := maxStart(len(c), d, h)
	if mt < 0 {
		return nil, st, nil
	}
	qEnv := dtw.NewEnvelope(query, rho)
	// Envelope of the whole series, so per-candidate LBEC is a slice
	// lookup instead of an O(d·ρ) recomputation (standard trick; the
	// wider context keeps it a valid lower bound).
	cEnv := dtw.NewEnvelope(c, rho)

	// Running top-k as a max-heap encoded in a sorted slice (k is
	// small: ≤128 in all experiments).
	var best []Result
	tau := math.Inf(1)
	insert := func(r Result) {
		pos := sort.Search(len(best), func(i int) bool {
			if best[i].Dist != r.Dist {
				return best[i].Dist > r.Dist
			}
			return best[i].T > r.T
		})
		best = append(best, Result{})
		copy(best[pos+1:], best[pos:])
		best[pos] = r
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			tau = best[k-1].Dist
		}
	}

	for t := 0; t <= mt; t++ {
		st.Candidates++
		seg := c[t : t+d]
		lbk, err := dtw.LBKim(query, seg)
		if err != nil {
			return nil, st, err
		}
		if lbk > tau {
			st.PrunedByLBKim++
			continue
		}
		lbq, err := dtw.LBKeogh(qEnv, seg)
		if err != nil {
			return nil, st, err
		}
		if lbq > tau {
			st.PrunedByLBEQ++
			continue
		}
		var lbc float64
		for j := 0; j < d; j++ {
			if q := query[j]; q > cEnv.Upper[t+j] {
				diff := q - cEnv.Upper[t+j]
				lbc += diff * diff
			} else if q < cEnv.Lower[t+j] {
				diff := q - cEnv.Lower[t+j]
				lbc += diff * diff
			}
		}
		if lbc > tau {
			st.PrunedByLBEC++
			continue
		}
		dist, done, err := dtw.DistanceEarlyAbandon(query, seg, rho, tau)
		if err != nil {
			return nil, st, err
		}
		if !done {
			st.AbandonedEarly++
			continue
		}
		st.FullDTW++
		if dist <= tau || len(best) < k {
			insert(Result{T: t, Dist: dist})
		}
	}
	return best, st, nil
}

// DirStats reports the work done by the direct LBen computation.
type DirStats struct {
	// Bounds is the number of (item query, candidate) lower bounds
	// produced.
	Bounds int
	// SimSeconds is the simulated GPU time spent.
	SimSeconds float64
}

// DirLBen computes LBen(IQ_i, C_{t,d_i}) directly for every item query
// length in elv and every valid candidate position, without the
// two-level index: each bound costs O(d) work instead of being
// assembled from ω-sized window sums shared across item queries and
// steps. Returns one bound slice per item length (index = position).
func DirLBen(dev *gpusim.Device, c []float64, elv []int, rho, h int) ([][]float64, DirStats, error) {
	var st DirStats
	if len(elv) == 0 {
		return nil, st, fmt.Errorf("scan: empty ELV")
	}
	dmax := elv[len(elv)-1]
	if len(c) < dmax {
		return nil, st, fmt.Errorf("scan: series shorter than longest item query")
	}
	cEnv := dtw.NewEnvelope(c, rho)
	out := make([][]float64, len(elv))
	before := dev.SimSeconds()
	for i, d := range elv {
		query := c[len(c)-d:]
		qEnv := dtw.NewEnvelope(query, rho)
		mt := maxStart(len(c), d, h)
		if mt < 0 {
			out[i] = nil
			continue
		}
		n := mt + 1
		bounds := make([]float64, n)
		grid := (n + chunk - 1) / chunk
		err := dev.Launch(grid, func(blk *gpusim.Block) error {
			lo := blk.ID * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			blk.GlobalAccess((hi - lo) * d * 2)
			blk.ParallelCompute(hi-lo, d*8)
			for t := lo; t < hi; t++ {
				seg := c[t : t+d]
				lbq, err := dtw.LBKeogh(qEnv, seg)
				if err != nil {
					return err
				}
				var lbc float64
				for j := 0; j < d; j++ {
					if q := query[j]; q > cEnv.Upper[t+j] {
						diff := q - cEnv.Upper[t+j]
						lbc += diff * diff
					} else if q < cEnv.Lower[t+j] {
						diff := q - cEnv.Lower[t+j]
						lbc += diff * diff
					}
				}
				bounds[t] = math.Max(lbq, lbc)
			}
			return nil
		})
		if err != nil {
			return nil, st, err
		}
		st.Bounds += n
		out[i] = bounds
	}
	st.SimSeconds = dev.SimSeconds() - before
	return out, st, nil
}

// ParallelCPUScan runs the FastCPUScan cascade across `workers`
// goroutines, each owning a contiguous shard of the candidate range,
// then merges the per-shard top-k sets. The paper notes SMiLer's CPU
// paths "can be further reduced by multithreading on multi-core
// architecture" — this is that variant for the scan baseline. Results
// are identical to FastCPUScan's (each shard keeps its own running
// threshold, so pruning is weaker but correctness is unchanged).
func ParallelCPUScan(c, query []float64, rho, k, h, workers int) ([]Result, error) {
	if err := validateArgs(c, query, k, h); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := len(query)
	mt := maxStart(len(c), d, h)
	if mt < 0 {
		return nil, nil
	}
	n := mt + 1
	if workers > n {
		workers = n
	}
	type shardOut struct {
		res []Result
		err error
	}
	outs := make([]shardOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Each shard scans its candidate window; the slice passed
			// to FastCPUScan is extended so segments starting near the
			// shard end remain addressable, with the start range
			// enforced through the label horizon arithmetic.
			end := hi - 1 + d + h
			if end > len(c) {
				end = len(c)
			}
			sub := c[lo:end]
			res, _, err := FastCPUScan(sub, query, rho, k, h)
			if err != nil {
				outs[w].err = err
				return
			}
			for i := range res {
				res[i].T += lo
			}
			outs[w].res = res
		}(w, lo, hi)
	}
	wg.Wait()
	var all []Result
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		all = append(all, o.res...)
	}
	sortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}
