package baselines

import (
	"errors"
	"math"
	"testing"
)

func TestPersistence(t *testing.T) {
	p := NewPersistence()
	if p.Name() != "Persistence" {
		t.Fatal("name wrong")
	}
	if _, err := p.Forecast(1); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
	for i := 0; i < 50; i++ {
		p.Observe(float64(i % 3))
	}
	f, err := p.Forecast(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean != float64(49%3) {
		t.Fatalf("mean = %v", f.Mean)
	}
	if f.Variance <= 0 {
		t.Fatal("variance must be positive")
	}
	// Random-walk variance grows linearly with h.
	f5, _ := p.Forecast(5)
	if math.Abs(f5.Variance-5*f.Variance) > 1e-9 {
		t.Fatalf("variance should scale with h: %v vs %v", f5.Variance, f.Variance)
	}
	if _, err := p.Forecast(0); err == nil {
		t.Fatal("h=0 should fail")
	}
}

func TestSeasonalNaive(t *testing.T) {
	const m = 8
	s := NewSeasonalNaive(m)
	if s.Name() != "SeasonalNaive" {
		t.Fatal("name wrong")
	}
	if _, err := s.Forecast(1); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
	// Perfectly periodic data: the forecast is exact for every h.
	wave := func(i int) float64 { return math.Sin(2 * math.Pi * float64(i) / m) }
	n := 0
	for ; n < 3*m; n++ {
		if err := s.Observe(wave(n)); err != nil {
			t.Fatal(err)
		}
	}
	for h := 1; h <= m; h++ {
		f, err := s.Forecast(h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f.Mean-wave(n-1+h)) > 1e-12 {
			t.Fatalf("h=%d: forecast %v, want %v", h, f.Mean, wave(n-1+h))
		}
		if f.Variance <= 0 {
			t.Fatal("variance must be positive")
		}
	}
	if _, err := s.Forecast(0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if _, err := s.Forecast(m + 1); err == nil {
		t.Fatal("h beyond period should fail")
	}
	bad := NewSeasonalNaive(0)
	if err := bad.Observe(1); err == nil {
		t.Fatal("period 0 should fail")
	}
}

func TestLazyKNNBootstrap(t *testing.T) {
	n := 1500
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/48) + 0.05*math.Cos(float64(i)*1.7)
	}
	b := &LazyKNNBootstrap{K: 8, D: 32, Rho: 4, B: 50, Seed: 3}
	if b.Name() != "LazyKNN-Bootstrap" {
		t.Fatal("name wrong")
	}
	p, err := b.Predict(series[:n-1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean-series[n-1]) > 0.15 {
		t.Fatalf("predicted %v, truth %v", p.Mean, series[n-1])
	}
	if p.Variance <= 0 {
		t.Fatal("variance must be positive")
	}
	// The bootstrap mean should agree with the plain LazyKNN mean
	// (same neighbour pool), while the variance construction differs.
	plain := &LazyKNN{K: 8, D: 32, Rho: 4}
	pp, err := plain.Predict(series[:n-1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean-pp.Mean) > 0.1 {
		t.Fatalf("bootstrap mean %v far from plain %v", p.Mean, pp.Mean)
	}
	// Determinism under a fixed seed.
	p2, err := b.Predict(series[:n-1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean != p2.Mean || p.Variance != p2.Variance {
		t.Fatal("bootstrap should be deterministic under a fixed seed")
	}
	// Error paths.
	if _, err := b.Predict(series[:10], 1); err == nil {
		t.Fatal("short history should fail")
	}
	if _, err := b.Predict(series, 0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if _, err := (&LazyKNNBootstrap{}).Predict(series, 1); err == nil {
		t.Fatal("zero config should fail")
	}
	if NewLazyKNNBootstrap().B != 100 {
		t.Fatal("default config wrong")
	}
}
