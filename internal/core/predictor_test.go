package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredictionValid(t *testing.T) {
	if !(Prediction{Mean: 1, Variance: 0.5}).Valid() {
		t.Fatal("should be valid")
	}
	bad := []Prediction{
		{Mean: math.NaN(), Variance: 1},
		{Mean: math.Inf(1), Variance: 1},
		{Mean: 0, Variance: 0},
		{Mean: 0, Variance: math.Inf(1)},
	}
	for i, p := range bad {
		if p.Valid() {
			t.Fatalf("case %d should be invalid", i)
		}
	}
}

func TestPredictionLogLikelihood(t *testing.T) {
	p := Prediction{Mean: 0, Variance: 1}
	want := -0.5 * math.Log(2*math.Pi) // standard normal at its mean
	if got := p.LogLikelihood(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogLikelihood(0) = %v, want %v", got, want)
	}
	if p.LogLikelihood(0) <= p.LogLikelihood(2) {
		t.Fatal("likelihood should decay away from the mean")
	}
}

func TestARPredictor(t *testing.T) {
	ar := NewAR()
	if ar.Name() != "AR" {
		t.Fatal("name wrong")
	}
	pred, err := ar.Predict(nil, nil, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Mean-4) > 1e-12 {
		t.Fatalf("mean = %v, want 4", pred.Mean)
	}
	wantVar := (4.0 + 0 + 4) / 3
	if math.Abs(pred.Variance-wantVar) > 1e-12 {
		t.Fatalf("variance = %v, want %v", pred.Variance, wantVar)
	}
	if _, err := ar.Predict(nil, nil, nil); !errors.Is(err, ErrNoNeighbors) {
		t.Fatalf("err = %v", err)
	}
	// Constant labels hit the variance floor, not zero.
	pred, err = ar.Predict(nil, nil, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Variance <= 0 {
		t.Fatal("variance floor missing")
	}
}

// The GP predictor should track a clean functional relationship far
// better than the AR average when the neighbours' labels vary with the
// input.
func TestGPPredictorBeatsARonStructuredData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const d = 8
	makeRow := func(phase float64) ([]float64, float64) {
		seg := make([]float64, d)
		for j := 0; j < d; j++ {
			seg[j] = math.Sin(phase + float64(j)*0.3)
		}
		return seg, math.Sin(phase + float64(d)*0.3) // next value
	}
	var x [][]float64
	var y []float64
	for i := 0; i < 24; i++ {
		seg, label := makeRow(rng.Float64() * 2 * math.Pi)
		x = append(x, seg)
		y = append(y, label)
	}
	x0, truth := makeRow(1.234)

	gpp := NewGP()
	if gpp.Name() != "GP" {
		t.Fatal("name wrong")
	}
	gpPred, err := gpp.Predict(x0, x, y)
	if err != nil {
		t.Fatal(err)
	}
	arPred, err := NewAR().Predict(x0, x, y)
	if err != nil {
		t.Fatal(err)
	}
	gpErr := math.Abs(gpPred.Mean - truth)
	arErr := math.Abs(arPred.Mean - truth)
	if gpErr > 0.1 {
		t.Fatalf("GP error %v too large", gpErr)
	}
	if gpErr >= arErr {
		t.Fatalf("GP (%v) should beat AR (%v) on structured data", gpErr, arErr)
	}
	if err := gpp.Hyper().Validate(); err != nil {
		t.Fatalf("stored hyperparameters invalid: %v", err)
	}
}

func TestGPPredictorWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d = 4
	var x [][]float64
	var y []float64
	for i := 0; i < 16; i++ {
		seg := make([]float64, d)
		for j := range seg {
			seg[j] = rng.NormFloat64()
		}
		x = append(x, seg)
		y = append(y, seg[d-1]+0.1*rng.NormFloat64())
	}
	gpp := NewGP()
	if _, err := gpp.Predict(x[0], x, y); err != nil {
		t.Fatal(err)
	}
	h1 := gpp.Hyper()
	// Second call warm-starts from h1; it must still succeed and keep
	// valid hyperparameters.
	if _, err := gpp.Predict(x[1], x, y); err != nil {
		t.Fatal(err)
	}
	if err := gpp.Hyper().Validate(); err != nil {
		t.Fatal(err)
	}
	_ = h1
	if _, err := gpp.Predict(nil, nil, nil); !errors.Is(err, ErrNoNeighbors) {
		t.Fatalf("err = %v", err)
	}
}

// Property: AR predictions are always valid for non-degenerate input.
func TestQuickARAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 10
		}
		p, err := NewAR().Predict(nil, nil, y)
		return err == nil && p.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGPPredictorMLObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 6
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		seg := make([]float64, d)
		for j := range seg {
			seg[j] = rng.NormFloat64()
		}
		x = append(x, seg)
		y = append(y, seg[d-1]*0.7+0.05*rng.NormFloat64())
	}
	gpp := NewGP()
	gpp.Objective = ObjectiveML
	pred, err := gpp.Predict(x[0], x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Valid() {
		t.Fatalf("invalid prediction %+v", pred)
	}
	if math.Abs(pred.Mean-y[0]) > 0.3 {
		t.Fatalf("ML-trained GP mean %v far from target %v", pred.Mean, y[0])
	}
	// Warm-started second call must also work under ML.
	if _, err := gpp.Predict(x[1], x, y); err != nil {
		t.Fatal(err)
	}
}
