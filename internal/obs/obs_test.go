package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(0)
	c.Add(-7) // monotonic: negative deltas ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %v, want -1.25", got)
	}
}

// TestNilInstrumentsNoOp: the whole API must be callable through nil
// receivers — that is the disabled-metrics fast path.
func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil {
		t.Fatal("nil histogram state")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryIdentity: same (name, labels) returns the same
// instrument; different labels return distinct children.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "h", L("route", "/a"))
	b := r.Counter("hits_total", "h", L("route", "/b"))
	if a == b {
		t.Fatal("distinct label sets must get distinct counters")
	}
	if again := r.Counter("hits_total", "h", L("route", "/a")); again != a {
		t.Fatal("same label set must return the same counter")
	}
	// Label order must not matter.
	x := r.Gauge("depth", "d", L("a", "1"), L("b", "2"))
	y := r.Gauge("depth", "d", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order must not create a new child")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two kinds must panic")
		}
	}()
	r.Gauge("m", "h")
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := L("w", string(rune('a'+w%4)))
			for i := 0; i < iters; i++ {
				r.Counter("c_total", "c", lbl).Inc()
				r.Gauge("g", "g", lbl).Add(1)
				r.Histogram("h_seconds", "h", nil, lbl).Observe(0.001 * float64(i))
			}
		}()
	}
	// Concurrent scrapes while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	var total uint64
	for _, v := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", "c", L("w", v)).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCounterFuncReadAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.CounterFunc("lazy_total", "l", func() float64 { return v })
	v = 42
	out := scrape(t, r)
	want := "lazy_total 42\n"
	if !contains(out, want) {
		t.Fatalf("scrape missing %q:\n%s", want, out)
	}
}

func TestRegistryInfo(t *testing.T) {
	r := NewRegistry()
	r.Info("smiler_build_info", "Build information.",
		L("version", "0.5.0"), L("go", "go1.22"))
	r.Info("smiler_build_info", "Build information.",
		L("version", "0.5.0"), L("go", "go1.22")) // idempotent
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `smiler_build_info{version="0.5.0",go="go1.22"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	// Nil registry: no-op, no panic.
	var nilReg *Registry
	nilReg.Info("x", "y")
}
