package baselines

import (
	"fmt"

	"smiler/internal/gp"
	"smiler/internal/mat"
)

// NysSVR is the low-rank kernel regression baseline [69]: a rank-r
// Nyström approximation of the RBF kernel feeding a ridge regression.
// (The paper's comparator is an RBF-kernel SVR; the ε-insensitive loss
// is replaced by the squared loss here — what the comparison exercises
// is the low-rank kernel bottleneck, which is identical.) Confidence
// is a Gaussian with the training residual variance, following the
// paper's libSVM-style estimate.
type NysSVR struct {
	// Rank is the Nyström landmark count r (paper default 128).
	Rank int
	// Ridge is the L2 regularization strength (default 1e-3·n).
	Ridge float64

	hyper     gp.Hyper
	landmarks [][]float64
	beta      []float64 // dual-ish weights: prediction = k_r(x)ᵀ·β
	dim       int
	resVar    float64
	trained   bool
}

// NewNysSVR builds the baseline with rank r.
func NewNysSVR(r int) *NysSVR { return &NysSVR{Rank: r} }

// Name implements Regressor.
func (n *NysSVR) Name() string { return "NysSVR" }

// Train implements Regressor. Using the Nyström identity, ridge
// regression on the rank-r feature map reduces to solving
// (K_rn·K_nr + λ·K_rr)·β = K_rn·y, so training is O(n·r²).
func (n *NysSVR) Train(x [][]float64, y []float64) error {
	dim, err := checkTraining(x, y)
	if err != nil {
		return err
	}
	if n.Rank <= 0 {
		return fmt.Errorf("baselines: NysSVR rank %d must be positive", n.Rank)
	}
	n.dim = dim
	n.hyper = gp.HeuristicHyper(x, y)
	r := n.Rank
	if r > len(x) {
		r = len(x)
	}
	n.landmarks = subsample(x, r)
	ridge := n.Ridge
	if ridge == 0 {
		ridge = 1e-3 * float64(len(x))
	}

	krr := mat.NewDense(r, r)
	for i := 0; i < r; i++ {
		for j := i; j < r; j++ {
			v := n.hyper.Cov(n.landmarks[i], n.landmarks[j])
			if i == j {
				v += 1e-8
			}
			krr.Set(i, j, v)
			krr.Set(j, i, v)
		}
	}
	// A = K_rn·K_nr, b = K_rn·y accumulated in one pass.
	a := mat.NewDense(r, r)
	b := make([]float64, r)
	kcol := make([]float64, r)
	for t := range x {
		for i := 0; i < r; i++ {
			kcol[i] = n.hyper.Cov(n.landmarks[i], x[t])
		}
		for i := 0; i < r; i++ {
			arow := a.Row(i)
			ki := kcol[i]
			for j := 0; j < r; j++ {
				arow[j] += ki * kcol[j]
			}
			b[i] += ki * y[t]
		}
	}
	for i := 0; i < r; i++ {
		arow := a.Row(i)
		krow := krr.Row(i)
		for j := 0; j < r; j++ {
			arow[j] += ridge * krow[j]
		}
	}
	if err := mat.SymmetrizeInPlace(a); err != nil {
		return err
	}
	ch, err := mat.NewCholesky(a)
	if err != nil {
		return fmt.Errorf("baselines: NysSVR system factorization: %w", err)
	}
	beta, err := ch.SolveVec(b)
	if err != nil {
		return err
	}
	n.beta = beta

	// Training residual variance for the confidence estimate.
	var ss float64
	for t := range x {
		for i := 0; i < r; i++ {
			kcol[i] = n.hyper.Cov(n.landmarks[i], x[t])
		}
		e := mat.Dot(kcol, beta) - y[t]
		ss += e * e
	}
	n.resVar = ss / float64(len(x))
	if n.resVar < varFloor {
		n.resVar = varFloor
	}
	n.trained = true
	return nil
}

// Predict implements Regressor.
func (n *NysSVR) Predict(x []float64) (Prediction, error) {
	if !n.trained {
		return Prediction{}, ErrNotTrained
	}
	if len(x) != n.dim {
		return Prediction{}, fmt.Errorf("%w: got %d features, want %d", ErrDims, len(x), n.dim)
	}
	k := make([]float64, len(n.landmarks))
	for i := range n.landmarks {
		k[i] = n.hyper.Cov(n.landmarks[i], x)
	}
	return Prediction{Mean: mat.Dot(k, n.beta), Variance: n.resVar}, nil
}
