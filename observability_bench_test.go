// Instrumentation overhead benchmarks: the same prediction and
// observation workloads with the metrics registry enabled (default)
// and with DisableMetrics — the nil-instrument no-op sink. The
// recorded comparison lives in EXPERIMENTS.md; regenerate with:
//
//	go test -bench ObservabilityOverhead -run '^$' .
package smiler_test

import (
	"math"
	"testing"

	"smiler"
)

func overheadConfig(disable bool) smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = smiler.PredictorAR
	cfg.DisableMetrics = disable
	return cfg
}

func newOverheadSystem(b *testing.B, disable bool) *smiler.System {
	b.Helper()
	sys, err := smiler.New(overheadConfig(disable))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	hist := make([]float64, 300)
	for i := range hist {
		hist[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := sys.AddSensor("s", hist); err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkObservabilityOverhead(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"metrics=on", false},
		{"metrics=off", true},
	} {
		b.Run("predict/"+tc.name, func(b *testing.B) {
			sys := newOverheadSystem(b, tc.disable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Predict("s", 1+i%3); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("observe/"+tc.name, func(b *testing.B) {
			sys := newOverheadSystem(b, tc.disable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Observe("s", 20+float64(i%7)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScrape measures one /metrics-shaped exposition pass over a
// registry populated by real traffic.
func BenchmarkScrape(b *testing.B) {
	sys := newOverheadSystem(b, false)
	for i := 0; i < 100; i++ {
		if _, err := sys.Predict("s", 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Metrics().WritePrometheus(discardWriter{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
