// Package index implements the SMiLer Index (paper Section 4.3): a
// two-level inverted-like index on the (simulated) GPU that answers
// the Continuous Suffix kNN Search problem (Definition 4.1) under
// banded DTW.
//
// Window level: the sensor history C is cut into disjoint windows DW of
// length ω; the master query MQ (the most recent d_max points) is cut
// into sliding windows SW of the same length, enumerated right-to-left.
// Each sliding window's posting list stores, per disjoint window, the
// two LB_Keogh bounds LBEQ(SW,DW) (query envelope) and LBEC(SW,DW)
// (data envelope).
//
// Group level: a Catenated Sliding Window Group CSG_b stacks the
// non-overlapping sliding windows {SW_b, SW_{b+ω}, ...}. Shift-summing
// the posting lists of a CSG's windows yields, in one pass, the window
// enhanced lower bound LBw (Theorem 4.3) between *every* item query
// (suffix of MQ with a length from ELV) and every candidate segment —
// the suffix-sharing reuse of Remark 2.
//
// Continuous prediction reuses the window level across steps (Remark
// 1): posting lists live in a rotating ring; advancing one time step
// computes a single fresh sliding-window row, refreshes the ρ rows
// whose query envelopes changed, and drops the stale oldest row.
//
// Search then follows the paper's filter → verify → select pipeline
// (Section 4.3.3): threshold from the k-th smallest lower bound (or
// from the previous step's kNN set during continuous prediction),
// exact banded DTW with the compressed warping matrix of Algorithm 2,
// and block-wise k-selection.
package index

import (
	"errors"
	"fmt"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
)

// LBMode selects which lower bound the filter uses. The paper's system
// uses LBEn; the single-envelope modes exist to reproduce the Table 3
// ablation.
type LBMode int

const (
	// LBModeEn filters with LBen = max(LBEQ, LBEC) (the default).
	LBModeEn LBMode = iota
	// LBModeEQ filters with the query-envelope bound only.
	LBModeEQ
	// LBModeEC filters with the data-envelope bound only.
	LBModeEC
)

func (m LBMode) String() string {
	switch m {
	case LBModeEn:
		return "LBen"
	case LBModeEQ:
		return "LBEQ"
	case LBModeEC:
		return "LBEC"
	default:
		return fmt.Sprintf("LBMode(%d)", int(m))
	}
}

// Params configures a per-sensor SMiLer Index.
type Params struct {
	// Rho is the Sakoe-Chiba warping width ρ (paper default 8).
	Rho int
	// Omega is the disjoint/sliding window length ω (paper default 16).
	Omega int
	// ELV is the Ensemble Length Vector: the item query lengths,
	// strictly ascending. Every length must be ≥ 2ω−1 so each candidate
	// segment covers at least one disjoint window (DualMatch
	// requirement), and the largest defines the master query length.
	ELV []int
	// LB selects the filtering lower bound (default LBModeEn).
	LB LBMode
	// MinSeparation, when > 1, keeps selected neighbours at least this
	// many time steps apart, suppressing trivially-overlapping matches.
	// 0 or 1 disables the constraint (the paper's behaviour).
	MinSeparation int
	// DisableEarlyAbandon turns off the τ-cutoff early abandonment
	// inside DTW verification (an ablation/debug knob; the abandonment
	// is exact, so results are identical either way). It is forced off
	// automatically when MinSeparation > 1, where the separated
	// selection wants exact distances for all unfiltered candidates.
	DisableEarlyAbandon bool
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.Rho < 0 {
		return fmt.Errorf("index: negative warping width %d", p.Rho)
	}
	if p.Omega < 2 {
		return fmt.Errorf("index: window length ω=%d must be ≥ 2", p.Omega)
	}
	if len(p.ELV) == 0 {
		return errors.New("index: empty ELV")
	}
	prev := 0
	for _, d := range p.ELV {
		if d < 2*p.Omega-1 {
			return fmt.Errorf("index: item query length %d < 2ω−1 = %d", d, 2*p.Omega-1)
		}
		if d <= prev {
			return errors.New("index: ELV must be strictly ascending")
		}
		prev = d
	}
	if p.LB < LBModeEn || p.LB > LBModeEC {
		return fmt.Errorf("index: unknown LB mode %d", p.LB)
	}
	if p.MinSeparation < 0 {
		return fmt.Errorf("index: negative MinSeparation %d", p.MinSeparation)
	}
	return nil
}

// DefaultParams returns the paper's default configuration (Table 2):
// ρ=8, ω=16, ELV={32,64,96}.
func DefaultParams() Params {
	return Params{Rho: 8, Omega: 16, ELV: []int{32, 64, 96}}
}

// Index is the per-sensor SMiLer Index. It is not safe for concurrent
// use; in a multi-sensor deployment each sensor owns one Index (the
// paper scales out by creating one index per sensor and invoking more
// blocks).
type Index struct {
	dev *gpusim.Device
	p   Params

	c    []float64 // full history of the sensor (normalized upstream)
	dmax int       // master query length = max(ELV)
	nSW  int       // number of sliding windows = dmax − ω + 1

	// Disjoint windows. dwEnvU/dwEnvL[r] hold the envelope of DW_r
	// computed with full-series context (a superset envelope, so the
	// bounds stay valid; see Theorem 4.3's proof which drops boundary
	// terms). The final column's context is refreshed as points arrive
	// until ρ points of right context exist.
	nDW          int
	dwEnvU       [][]float64
	dwEnvL       [][]float64
	dwCtxPending []int // DW indices whose right context is incomplete

	// Window-level posting lists in a ring of physical rows; logical
	// sliding window b (offset from the right end of MQ) lives at
	// physical slot (cursor+b) mod nSW. postEQ[slot][r] = LBEQ(SW_b,
	// DW_r), postEC likewise.
	postEQ [][]float64
	postEC [][]float64
	cursor int

	// Master-query envelope, refreshed on every advance (length dmax).
	mqEnvU, mqEnvL []float64

	// prevNN remembers the last step's kNN positions per item length
	// for the continuous-threshold reuse (Section 4.3.3, Filtering).
	prevNN map[int][]int

	bufs     []*gpusim.Buffer
	unbooked int64 // appended-history bytes not yet reflected on the device
	closed   bool

	// any configures progressive (anytime) search — see progressive.go.
	any Anytime

	stats SearchStats
}

// SearchStats accumulates instrumentation from the most recent Search
// call (used by the Table 3 / Fig. 8 experiments).
type SearchStats struct {
	// Candidates is the number of candidate segments whose lower bound
	// was produced by the group level, summed over item queries.
	Candidates int
	// Unfiltered is the number of candidates that survived the lower
	// bound filter and required DTW verification.
	Unfiltered int
	// VerifySimSeconds is the simulated GPU time spent in verification.
	VerifySimSeconds float64
	// LowerBoundSimSeconds is the simulated GPU time spent producing
	// lower bounds (group-level shift sums).
	LowerBoundSimSeconds float64
	// LowerBoundWallSeconds is the host wall-clock time of the
	// group-level lower-bound pass (what a real deployment's latency
	// histograms observe; the sim seconds above are the cost-model
	// view).
	LowerBoundWallSeconds float64
	// VerifyWallSeconds is the host wall-clock time of DTW
	// verification, summed over item queries.
	VerifyWallSeconds float64
	// PerItem splits the candidate counters per item query, ordered
	// like ELV. The fused verification launch processes every item
	// query's chunks in one grid, so the per-item split is carried here
	// rather than read between launches.
	PerItem []ItemStats

	// Progressive-search counters (anytime mode; all zero in exact
	// mode). They explain why a query went progressive: how many
	// cost-ordered verify rounds ran, how much of the candidate set was
	// verified when the deadline fired, and whether the learned
	// lower-bound model ordered the rounds.
	//
	// Rounds is the number of cost-ordered verification rounds run.
	Rounds int
	// LBModelHits counts candidates whose verification order came from
	// the learned lower-bound model rather than the raw lower bound.
	LBModelHits int
	// VerifiedAtDeadline is the number of candidates verified when the
	// deadline fired (0 when the search ran to completion).
	VerifiedAtDeadline int
	// RoundWallSeconds holds per-round wall-clock durations, ordered.
	RoundWallSeconds []float64
	// Progressive is true when the search returned a best-so-far
	// (non-exhaustive) result because the context deadline fired.
	Progressive bool
	// FracVerified, LBGap and ProbExact summarize result quality across
	// item queries (worst case over items); see anytime.Quality. A
	// completed search reports 1, 0, 1.
	FracVerified float64
	LBGap        float64
	ProbExact    float64
}

// ItemStats is the per-item-query slice of the search counters.
type ItemStats struct {
	// D is the item query length.
	D int
	// Candidates is the number of candidate segments with a finite
	// lower bound.
	Candidates int
	// Unfiltered is the number of candidates that survived the filter
	// and were DTW-verified.
	Unfiltered int
}

// Pruned returns the number of candidates eliminated by the lower
// bound filter without a DTW verification.
func (s SearchStats) Pruned() int {
	p := s.Candidates - s.Unfiltered
	if p < 0 {
		return 0
	}
	return p
}

// New builds an index over the given history. The history must be at
// least max(ELV)+ω points long so that a master query and at least one
// disjoint window exist. The slice is copied.
func New(dev *gpusim.Device, history []float64, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dmax := p.ELV[len(p.ELV)-1]
	if len(history) < dmax+p.Omega {
		return nil, fmt.Errorf("index: history length %d < d_max+ω = %d", len(history), dmax+p.Omega)
	}
	ix := &Index{
		dev:    dev,
		p:      p,
		c:      append([]float64(nil), history...),
		dmax:   dmax,
		nSW:    dmax - p.Omega + 1,
		prevNN: make(map[int][]int),
	}
	// Device residency: the history plus both posting-list planes. The
	// posting lists grow with the history; reserve for the current size
	// and extend on demand in grow().
	ix.nDW = len(ix.c) / p.Omega
	bytes := int64(8 * (len(ix.c) + 2*ix.nSW*ix.nDW))
	buf, err := dev.Malloc("smiler-index", bytes)
	if err != nil {
		return nil, err
	}
	ix.bufs = append(ix.bufs, buf)

	ix.dwEnvU = make([][]float64, ix.nDW)
	ix.dwEnvL = make([][]float64, ix.nDW)
	for r := 0; r < ix.nDW; r++ {
		ix.computeDWEnvelope(r)
	}
	ix.postEQ = make([][]float64, ix.nSW)
	ix.postEC = make([][]float64, ix.nSW)
	for s := 0; s < ix.nSW; s++ {
		ix.postEQ[s] = make([]float64, ix.nDW)
		ix.postEC[s] = make([]float64, ix.nDW)
	}
	ix.refreshMQEnvelope()
	if err := ix.rebuildWindowLevel(); err != nil {
		ix.Close()
		return nil, err
	}
	return ix, nil
}

// Close releases the index's device memory. Further use is invalid.
func (ix *Index) Close() error {
	if ix.closed {
		return nil
	}
	ix.closed = true
	var first error
	for _, b := range ix.bufs {
		if err := ix.dev.Free(b); err != nil && first == nil {
			first = err
		}
	}
	ix.bufs = nil
	return first
}

// Len returns the current history length |C|.
func (ix *Index) Len() int { return len(ix.c) }

// Value returns the observation c_t.
func (ix *Index) Value(t int) float64 { return ix.c[t] }

// Params returns the index configuration.
func (ix *Index) Params() Params { return ix.p }

// Stats returns instrumentation from the most recent Search call.
func (ix *Index) Stats() SearchStats { return ix.stats }

// Footprint describes the index's device-memory consumption.
type Footprint struct {
	// HistoryBytes holds the raw series residing on the device.
	HistoryBytes int64
	// PostingBytes holds the two window-level posting planes
	// (LBEQ and LBEC, nSW×nDW entries each).
	PostingBytes int64
}

// Total returns the full per-sensor footprint in bytes.
func (f Footprint) Total() int64 { return f.HistoryBytes + f.PostingBytes }

// MemoryFootprint reports the index's current device residency — the
// quantity Fig. 12(c)'s sensors-per-GPU capacity is derived from.
func (ix *Index) MemoryFootprint() Footprint {
	return Footprint{
		HistoryBytes: int64(8 * len(ix.c)),
		PostingBytes: int64(8 * 2 * ix.nSW * ix.nDW),
	}
}

// History returns a copy of the full indexed history.
func (ix *Index) History() []float64 {
	return append([]float64(nil), ix.c...)
}

// MasterQuery returns a copy of the current master query (the last
// d_max points of the history).
func (ix *Index) MasterQuery() []float64 {
	return append([]float64(nil), ix.c[len(ix.c)-ix.dmax:]...)
}

// slot maps a logical sliding-window offset b to its physical ring row.
func (ix *Index) slot(b int) int {
	return (ix.cursor + b) % ix.nSW
}

// swStart returns the start position, within the history, of the
// sliding window at logical offset b: it covers c[swStart : swStart+ω].
func (ix *Index) swStart(b int) int {
	return len(ix.c) - b - ix.p.Omega
}

// computeDWEnvelope (re)computes the envelope of disjoint window r with
// full-series context and tracks whether its right context is complete.
func (ix *Index) computeDWEnvelope(r int) {
	omega, rho := ix.p.Omega, ix.p.Rho
	start := r * omega
	u := make([]float64, omega)
	l := make([]float64, omega)
	for i := 0; i < omega; i++ {
		lo, hi := start+i-rho, start+i+rho
		if lo < 0 {
			lo = 0
		}
		if hi > len(ix.c)-1 {
			hi = len(ix.c) - 1
		}
		mx, mn := ix.c[lo], ix.c[lo]
		for j := lo + 1; j <= hi; j++ {
			if ix.c[j] > mx {
				mx = ix.c[j]
			}
			if ix.c[j] < mn {
				mn = ix.c[j]
			}
		}
		u[i] = mx
		l[i] = mn
	}
	ix.dwEnvU[r] = u
	ix.dwEnvL[r] = l
	if (r+1)*omega+rho > len(ix.c) {
		// Right context incomplete: remember to refresh later.
		for _, p := range ix.dwCtxPending {
			if p == r {
				return
			}
		}
		ix.dwCtxPending = append(ix.dwCtxPending, r)
	}
}

// refreshMQEnvelope recomputes the master-query envelope, clamped to
// the master query's own extent (Definition B.1 applied to MQ).
func (ix *Index) refreshMQEnvelope() {
	mq := ix.c[len(ix.c)-ix.dmax:]
	env := dtw.NewEnvelope(mq, ix.p.Rho)
	ix.mqEnvU, ix.mqEnvL = env.Upper, env.Lower
}

// swEnvelope returns the envelope of the sliding window at logical
// offset b, sliced from the master-query envelope so neighbouring
// context inside MQ is honoured.
func (ix *Index) swEnvelope(b int) (u, l []float64) {
	// MQ spans history [len−dmax, len); the window spans [swStart,
	// swStart+ω); within MQ coordinates it starts at dmax − b − ω.
	off := ix.dmax - b - ix.p.Omega
	return ix.mqEnvU[off : off+ix.p.Omega], ix.mqEnvL[off : off+ix.p.Omega]
}

// fillPostingRow computes the posting list of the sliding window at
// logical offset b against disjoint windows [rLo, rHi) into its
// physical slot, charging blk for the work. When eqOnly is true only
// the LBEQ half is recomputed (the envelope-refresh path of Remark 1).
func (ix *Index) fillPostingRow(blk *gpusim.Block, b, rLo, rHi int, eqOnly bool) {
	omega := ix.p.Omega
	s := ix.slot(b)
	swLo := ix.swStart(b)
	sw := ix.c[swLo : swLo+omega]
	swU, swL := ix.swEnvelope(b)
	eq := ix.postEQ[s]
	ec := ix.postEC[s]
	for r := rLo; r < rHi; r++ {
		dwLo := r * omega
		dw := ix.c[dwLo : dwLo+omega]
		var sumEQ, sumEC float64
		for i := 0; i < omega; i++ {
			// LBEQ: data point vs query envelope.
			if v := dw[i]; v > swU[i] {
				d := v - swU[i]
				sumEQ += d * d
			} else if v < swL[i] {
				d := v - swL[i]
				sumEQ += d * d
			}
			if !eqOnly {
				// LBEC: query point vs data envelope.
				if q := sw[i]; q > ix.dwEnvU[r][i] {
					d := q - ix.dwEnvU[r][i]
					sumEC += d * d
				} else if q < ix.dwEnvL[r][i] {
					d := q - ix.dwEnvL[r][i]
					sumEC += d * d
				}
			}
		}
		eq[r] = sumEQ
		if !eqOnly {
			ec[r] = sumEC
		}
	}
	// Cost model: each (SW,DW) pair touches 2ω global words and does
	// ~4ω flops per bound; ω lanes work in parallel per pair.
	pairs := rHi - rLo
	if pairs > 0 {
		blk.GlobalAccess(2 * omega * pairs)
		blk.ParallelCompute(omega*pairs, 8)
	}
}

// rebuildWindowLevel recomputes every posting row — the from-scratch
// path used at construction and by the no-reuse ablation. One GPU block
// processes one sliding window (Section 4.3.1).
func (ix *Index) rebuildWindowLevel() error {
	ix.cursor = 0
	return ix.dev.Launch(ix.nSW, func(blk *gpusim.Block) error {
		ix.fillPostingRow(blk, blk.ID, 0, ix.nDW, false)
		return nil
	})
}

// growPostingRows extends every physical posting row with zeroed slots
// for newly completed disjoint windows.
func (ix *Index) growPostingRows() {
	for s := 0; s < ix.nSW; s++ {
		for len(ix.postEQ[s]) < ix.nDW {
			ix.postEQ[s] = append(ix.postEQ[s], 0)
			ix.postEC[s] = append(ix.postEC[s], 0)
		}
	}
}

// extendDWColumns fills posting-list entries for newly completed
// disjoint windows [oldNDW, nDW) across sliding windows [bLo, nSW).
func (ix *Index) extendDWColumns(oldNDW, bLo int) error {
	if ix.nDW == oldNDW || bLo >= ix.nSW {
		return nil
	}
	return ix.dev.Launch(ix.nSW-bLo, func(blk *gpusim.Block) error {
		ix.fillPostingRow(blk, bLo+blk.ID, oldNDW, ix.nDW, false)
		return nil
	})
}

// refreshPendingDWColumns re-derives envelopes (and posting columns)
// for disjoint windows whose right context was incomplete when they
// were first indexed.
func (ix *Index) refreshPendingDWColumns() error {
	if len(ix.dwCtxPending) == 0 {
		return nil
	}
	pending := ix.dwCtxPending
	ix.dwCtxPending = nil
	for _, r := range pending {
		ix.computeDWEnvelope(r)
	}
	return ix.dev.Launch(ix.nSW, func(blk *gpusim.Block) error {
		for _, r := range pending {
			ix.fillPostingRow(blk, blk.ID, r, r+1, false)
		}
		return nil
	})
}

// Advance appends a new observation and shifts the master query one
// step, reusing the window level per Remark 1: the ring cursor steps
// back one row, the vacated row is filled with the new rightmost
// sliding window, and the LBEQ halves of the ρ rows whose query
// envelopes gained the new point are recomputed. New and
// context-pending disjoint windows are folded in as they complete.
func (ix *Index) Advance(obs float64) error {
	if ix.closed {
		return errors.New("index: closed")
	}
	ix.c = append(ix.c, obs)
	ix.unbooked += 8 // the appended observation itself
	oldNDW := ix.nDW
	ix.nDW = len(ix.c) / ix.p.Omega
	if ix.nDW > oldNDW {
		// Book the accumulated history bytes plus the new posting-plane
		// columns in one allocation per completed disjoint window.
		extra := ix.unbooked + int64(8*2*ix.nSW*(ix.nDW-oldNDW))
		nb, err := ix.dev.Malloc("smiler-index-grow", extra)
		if err != nil {
			return err
		}
		ix.bufs = append(ix.bufs, nb)
		ix.unbooked = 0
		for r := oldNDW; r < ix.nDW; r++ {
			ix.dwEnvU = append(ix.dwEnvU, nil)
			ix.dwEnvL = append(ix.dwEnvL, nil)
			ix.computeDWEnvelope(r)
		}
	}
	ix.refreshMQEnvelope()
	ix.growPostingRows()

	// Rotate: logical b=0 must land on the slot of the previous oldest
	// window (previous b = nSW−1). Moving the cursor back one position
	// achieves exactly that.
	ix.cursor = (ix.cursor - 1 + ix.nSW) % ix.nSW

	rho := ix.p.Rho
	rows := 1 + rho // fresh row + ρ envelope-refresh rows
	if rows > ix.nSW {
		rows = ix.nSW
	}
	if err := ix.dev.Launch(rows, func(blk *gpusim.Block) error {
		b := blk.ID
		// b == 0 is the brand-new rightmost window: full recompute.
		// b ∈ [1, ρ] are reused rows whose query envelope changed: only
		// LBEQ needs refreshing (Fig. 6).
		ix.fillPostingRow(blk, b, 0, ix.nDW, b != 0)
		return nil
	}); err != nil {
		return err
	}
	// Every reused row still needs both bound halves for the brand-new
	// DW columns (the eqOnly refresh above left their LBEC at zero).
	if err := ix.extendDWColumns(oldNDW, 1); err != nil {
		return err
	}
	return ix.refreshPendingDWColumns()
}

// AdvanceRebuild appends a new observation and rebuilds the window
// level from scratch — the non-reuse baseline for the continuous-reuse
// ablation benchmark.
func (ix *Index) AdvanceRebuild(obs float64) error {
	if ix.closed {
		return errors.New("index: closed")
	}
	ix.c = append(ix.c, obs)
	oldNDW := ix.nDW
	ix.nDW = len(ix.c) / ix.p.Omega
	for r := oldNDW; r < ix.nDW; r++ {
		ix.dwEnvU = append(ix.dwEnvU, nil)
		ix.dwEnvL = append(ix.dwEnvL, nil)
	}
	// Recompute all envelopes with fresh context (brute-force path).
	ix.dwCtxPending = nil
	for r := 0; r < ix.nDW; r++ {
		ix.computeDWEnvelope(r)
	}
	for s := 0; s < ix.nSW; s++ {
		for len(ix.postEQ[s]) < ix.nDW {
			ix.postEQ[s] = append(ix.postEQ[s], 0)
			ix.postEC[s] = append(ix.postEC[s], 0)
		}
	}
	ix.refreshMQEnvelope()
	ix.prevNN = make(map[int][]int)
	return ix.rebuildWindowLevel()
}
