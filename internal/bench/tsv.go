package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteTSV writes a header plus rows as tab-separated values — the
// format gnuplot/pandas ingest directly, so the paper's figures can be
// re-plotted from harness output.
func WriteTSV(w io.Writer, header []string, rows [][]string) error {
	if len(header) == 0 {
		return fmt.Errorf("bench: empty TSV header")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for i, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("bench: TSV row %d has %d cells, header has %d", i, len(r), len(header))
		}
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// SaveTSV writes a TSV file, creating parent directories.
func SaveTSV(path string, header []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTSV(f, header, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fig7TSV converts Fig. 7 rows into a plottable series (one row per
// method × k).
func Fig7TSV(rows []Fig7Row) (header []string, out [][]string) {
	header = []string{"dataset", "method", "k", "wall_sec", "sim_sec"}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, string(r.Method), fmt.Sprint(r.K), f6(r.WallSec), f6(r.SimSec),
		})
	}
	return header, out
}

// AccuracyTSV converts accuracy rows (Figs. 9–11) into long-format
// series: one row per (method, horizon).
func AccuracyTSV(rows []AccuracyRow) (header []string, out [][]string) {
	header = []string{"dataset", "method", "h", "mae", "mnlpd", "coverage95", "samples"}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Method, fmt.Sprint(r.H), f6(r.MAE), f6(r.MNLPD),
			f3(r.Coverage95), fmt.Sprint(r.Samples),
		})
	}
	return header, out
}

// Fig13TSV converts the PSGP sweep.
func Fig13TSV(rows []Fig13Row) (header []string, out [][]string) {
	header = []string{"dataset", "active_points", "train_sec_per_sensor", "psgp_mae", "smiler_gp_mae"}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, fmt.Sprint(r.ActivePoints), f6(r.TrainSecPer), f6(r.PSGPMae), f6(r.SMiLerGPMae),
		})
	}
	return header, out
}

// Table3TSV converts the lower-bound ablation.
func Table3TSV(rows []Table3Row) (header []string, out [][]string) {
	header = []string{"dataset", "bound", "verify_wall_sec", "verify_sim_sec", "unfiltered_per_query"}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Bound.String(), f6(r.VerifyWallSec), f6(r.VerifySimSec),
			fmt.Sprintf("%.1f", r.Unfiltered),
		})
	}
	return header, out
}
