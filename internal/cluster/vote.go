// Primary election: lowest-id-alive over the existing prober.
//
// Every node continuously computes the same function of (installed
// map, local probe results): the first active-state member, in id
// order, whose readiness probe passes. No ballots are exchanged — the
// map is shared state and probes converge within ProbeFailures
// intervals, so all live nodes settle on the same primary without a
// vote round. The primary's only privilege is publishing new map
// epochs and driving the rebalancer; a wrong transient answer (two
// nodes briefly both believing they are primary during a probe
// transition) is safe because epoch monotonicity arbitrates the
// publishes.
//
// Joining and draining members are never candidates: a joiner has no
// state to be authoritative about, and a drainer is on its way out.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"smiler/internal/obs"
)

// electedPrimary computes this node's current view of the primary, or
// "" when no active member is reachable.
func (n *Node) electedPrimary() string {
	v := n.curView()
	if v == nil {
		return ""
	}
	ids := make([]string, 0, len(v.members))
	for id := range v.members {
		if v.stateOf(id) == StateActive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if n.health.isUp(id) {
			return id
		}
	}
	return ""
}

// electorLoop watches the primary computation for transitions: the
// winner records election_won, and a primary with members mid-
// transition keeps the rebalancer kicked (so a freshly elected
// primary picks up a predecessor's unfinished rebalance).
func (n *Node) electorLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.electTick()
		}
	}
}

func (n *Node) electTick() {
	v := n.curView()
	if v == nil || !v.inMap {
		return
	}
	prim := n.electedPrimary()
	if prim == "" {
		return
	}
	prev, _ := n.primary.Load().(string)
	if prim != prev {
		n.primary.Store(prim)
		if prim == n.cfg.Self && len(v.members) > 1 {
			detail := fmt.Sprintf("primary at epoch %d", v.cmap.Epoch)
			if prev != "" {
				detail += ", took over from " + prev
			}
			n.sys.Events().Record(obs.Event{Type: "election_won", Detail: detail})
			if n.log != nil {
				n.log.Info("cluster election won", "epoch", v.cmap.Epoch, "previous", prev)
			}
		} else if n.log != nil && prev != "" {
			n.log.Info("cluster primary changed", "primary", prim, "previous", prev)
		}
	}
	if prim == n.cfg.Self && viewNeedsRebalance(v) {
		n.reb.kickNow()
	}
}
