package ingest

import (
	"fmt"
	"sync/atomic"
	"time"
)

// item is one queue entry: either an observation or a flush token.
// Flush tokens are how Drain observes progress without extra locks:
// the worker closes the token's channel once everything enqueued
// before it has been applied.
type item struct {
	obs   Observation
	at    time.Time
	flush chan struct{}
}

// shard is one ingestion worker: a bounded queue drained by a single
// goroutine, so observations for any given sensor (which always hash
// to the same shard) are applied in arrival order.
type shard struct {
	id int
	ch chan item

	enqueued    atomic.Uint64
	processed   atomic.Uint64
	dropped     atomic.Uint64
	errs        atomic.Uint64
	batches     atomic.Uint64
	latencyNs   atomic.Int64
	journalErrs atomic.Uint64
	panics      atomic.Uint64
}

func (sh *shard) snapshot() ShardStats {
	s := ShardStats{
		Shard:         sh.id,
		QueueDepth:    len(sh.ch),
		Enqueued:      sh.enqueued.Load(),
		Processed:     sh.processed.Load(),
		Dropped:       sh.dropped.Load(),
		Errors:        sh.errs.Load(),
		Batches:       sh.batches.Load(),
		JournalErrors: sh.journalErrs.Load(),
		Panics:        sh.panics.Load(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Processed) / float64(s.Batches)
	}
	if s.Processed > 0 {
		s.AvgLatencyMicros = float64(sh.latencyNs.Load()) / 1e3 / float64(s.Processed)
	}
	return s
}

// worker drains the shard queue in micro-batches until the channel is
// closed, then exits — which is what makes Close a drain: everything
// accepted before the close is applied first.
func (p *Pipeline) worker(sh *shard) {
	defer p.wg.Done()
	batch := make([]item, 0, p.cfg.MaxBatch)
	for first := range sh.ch {
		batch = append(batch[:0], first)
		// Opportunistically gather whatever else is already queued, up
		// to MaxBatch, without blocking: micro-batching amortizes the
		// scheduling cost per observation under load while adding no
		// latency when traffic is light.
	gather:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case it, ok := <-sh.ch:
				if !ok {
					break gather // closed; range exits after this batch
				}
				batch = append(batch, it)
			default:
				break gather
			}
		}
		sh.batches.Add(1)
		for _, it := range batch {
			if it.flush != nil {
				close(it.flush)
				continue
			}
			p.applyItem(sh, it)
			// The sensor's state changed (or at least may have): any
			// cached forecast for it is stale.
			p.co.invalidate(it.obs.Sensor)
			sh.processed.Add(1)
			sh.latencyNs.Add(time.Since(it.at).Nanoseconds())
		}
	}
}

// applyItem journals and applies one observation with a panic guard:
// a panic in the journal or the apply (a bug or an injected fault)
// becomes one errored observation, never a dead shard worker — every
// sensor hashed onto this shard would silently stop ingesting
// otherwise.
func (p *Pipeline) applyItem(sh *shard, it item) {
	defer func() {
		if r := recover(); r != nil {
			sh.panics.Add(1)
			sh.errs.Add(1)
			if p.cfg.OnError != nil {
				p.cfg.OnError(it.obs, fmt.Errorf("ingest: recovered panic applying observation: %v", r))
			}
		}
	}()
	if p.cfg.Journal != nil {
		if err := p.cfg.Journal(sh.id, it.obs.Sensor, it.obs.Value); err != nil {
			sh.journalErrs.Add(1)
			if p.cfg.OnError != nil {
				p.cfg.OnError(it.obs, fmt.Errorf("ingest: journal failed (observation still applied): %w", err))
			}
		}
	}
	if err := p.sys.Observe(it.obs.Sensor, it.obs.Value); err != nil {
		sh.errs.Add(1)
		if p.cfg.OnError != nil {
			p.cfg.OnError(it.obs, err)
		}
		return
	}
	if fn := p.onApplied.Load(); fn != nil {
		(*fn)(it.obs)
	}
}
