package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first failures requests with the given status
// and then serves a fixed JSON body.
type flakyHandler struct {
	failures int32
	status   int
	calls    atomic.Int32
	body     any
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.calls.Add(1)
	if n <= atomic.LoadInt32(&f.failures) {
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(errorResponse{Error: "transient"})
		return
	}
	json.NewEncoder(w).Encode(f.body)
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetriesFlakyGET(t *testing.T) {
	h := &flakyHandler{failures: 2, status: http.StatusServiceUnavailable, body: []string{"a", "b"}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	ids, err := c.Sensors()
	if err != nil {
		t.Fatalf("GET should have recovered after retries, got %v", err)
	}
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("ids = %v, want [a b]", ids)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientConcurrentRetries hammers one shared Client from many
// goroutines against a server that fails every other request, so most
// GETs go through the backoff path concurrently. A shared Client must
// be safe for concurrent use (only SetRetryPolicy is exempt); the
// jitter source in particular must not race — run under -race.
func TestClientConcurrentRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorResponse{Error: "transient"})
			return
		}
		json.NewEncoder(w).Encode([]string{"a"})
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(4))

	// With requests from 8 goroutines interleaving on the shared
	// counter, one GET can draw the failing parity on all its attempts
	// and exhaust its budget — that outcome is fine (it still walked the
	// backoff path); any other error is not.
	const goroutines, gets = 8, 20
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < gets; i++ {
				if _, err := c.Sensors(); err != nil && !strings.Contains(err.Error(), "transient") {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent GET failed with a non-transient error: %v", err)
		}
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusInternalServerError, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	if _, err := c.Sensors(); err == nil {
		t.Fatal("want error after retry budget exhausted")
	} else if !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("err = %v, want the final HTTP 500", err)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly the 3-attempt budget", got)
	}
}

func TestClientNoRetryOn4xx(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusNotFound, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(5))

	if _, err := c.Sensors(); err == nil {
		t.Fatal("want error on 404")
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests; 4xx must not be retried", got)
	}
}

// TestClientRetryOnPOST: mutations are retried under the backoff
// budget, all attempts of one logical request share one idempotency
// key (so the server can dedupe), distinct requests get distinct keys,
// and the exhausted error reports the attempt count.
func TestClientRetryOnPOST(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	base := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable, body: nil}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(IdempotencyKeyHeader))
		mu.Unlock()
		base.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(5))

	err = c.Observe("s", 1.0)
	if err == nil {
		t.Fatal("want error on failing POST")
	}
	if !strings.Contains(err.Error(), "after 5 attempts") {
		t.Fatalf("err = %v, want the attempt count surfaced", err)
	}
	if got := base.calls.Load(); got != 5 {
		t.Fatalf("server saw %d requests, want the full 5-attempt budget", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, k := range keys {
		if k == "" {
			t.Fatalf("attempt %d carried no idempotency key", i)
		}
		if k != keys[0] {
			t.Fatalf("attempt %d used key %q, want %q (one key per logical request)", i, k, keys[0])
		}
	}
	// A fresh logical request must mint a fresh key.
	keys = keys[:0]
	mu.Unlock()
	_ = c.Observe("s", 2.0)
	mu.Lock()
	if len(keys) == 0 || keys[0] == "" {
		t.Fatal("second request carried no idempotency key")
	}
}

func TestClientRetryTransportError(t *testing.T) {
	// A server that is started and immediately closed yields a
	// connection-refused transport error on every attempt.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c, err := NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	start := time.Now()
	if _, err := c.Sensors(); err == nil {
		t.Fatal("want transport error")
	}
	// Two backoff sleeps (1ms, 2ms) must have happened; generous bound.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retries took %v, backoff not bounded", elapsed)
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.doCtx(ctx, http.MethodGet, "/sensors", nil, nil)
	if err == nil {
		t.Fatal("want error under cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry loop ran %v; must stop promptly", elapsed)
	}
	if got := h.calls.Load(); got >= 50 {
		t.Fatalf("server saw %d requests; cancellation must cut the budget short", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// An HTTP-date ~2s out parses to roughly that distance.
	in := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(in); got <= 0 || got > 3*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~2s", in, got)
	}
}

// TestClientHonorsRetryAfter: a 503 carrying Retry-After must delay
// the retry until the server said it would be ready, overriding the
// (here, millisecond-scale) exponential schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorResponse{Error: "draining"})
			return
		}
		json.NewEncoder(w).Encode([]string{"a"})
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Second})

	start := time.Now()
	if _, err := c.Sensors(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry after %v; the 1s Retry-After hint was not honored", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestClientRetryAfterCappedAtMaxDelay: a hostile or confused hint
// cannot stall the client past its own MaxDelay.
func TestClientRetryAfterCappedAtMaxDelay(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode([]string{"a"})
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond})

	start := time.Now()
	if _, err := c.Sensors(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry stalled %v; hint must be capped at MaxDelay", elapsed)
	}
}

// TestClientErrorExposesHTTPStatus: callers branch on status via
// errors.As instead of string matching.
func TestClientErrorExposesHTTPStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(errorResponse{Error: "sensor exists"})
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = c.AddSensor("s", nil)
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err %T %v; want *HTTPError in the chain", err, err)
	}
	if he.Status != http.StatusConflict || he.Msg != "sensor exists" {
		t.Fatalf("HTTPError = %+v", he)
	}
	if !strings.Contains(he.Error(), "HTTP 409") {
		t.Fatalf("Error() = %q", he.Error())
	}
}

// TestClientOwnerEviction: the per-sensor owner-URL cache drops a hint
// only when the hinted node looks gone or broken — transport errors
// and 5xx. 4xx responses are authoritative answers about the request,
// not the routing, so the hint must survive them; and an error
// response that itself names an owner re-learns instead of forgetting.
// MaxAttempts=1 everywhere: no retries, no sleeps, no timing.
func TestClientOwnerEviction(t *testing.T) {
	newPair := func(t *testing.T, ownerStatus int, ownerHeader string) (*Client, *httptest.Server, *atomic.Int32, *atomic.Int32) {
		t.Helper()
		var primaryCalls, ownerCalls atomic.Int32
		primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			primaryCalls.Add(1)
			json.NewEncoder(w).Encode(ForecastResponse{})
		}))
		t.Cleanup(primary.Close)
		owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ownerCalls.Add(1)
			if ownerHeader != "" {
				w.Header().Set(OwnerURLHeader, ownerHeader)
			}
			if ownerStatus >= 400 {
				w.WriteHeader(ownerStatus)
				json.NewEncoder(w).Encode(errorResponse{Error: "nope"})
				return
			}
			json.NewEncoder(w).Encode(ForecastResponse{})
		}))
		t.Cleanup(owner.Close)
		c, err := NewClient(primary.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
		c.setOwner("s", owner.URL)
		return c, owner, &primaryCalls, &ownerCalls
	}

	t.Run("4xx keeps the hint", func(t *testing.T) {
		c, owner, primaryCalls, ownerCalls := newPair(t, http.StatusNotFound, "")
		if _, err := c.Forecast("s", 1); err == nil {
			t.Fatal("expected a 404 error")
		}
		if got := c.owner("s"); got != owner.URL {
			t.Fatalf("owner hint = %q after 404, want %q kept", got, owner.URL)
		}
		if primaryCalls.Load() != 0 || ownerCalls.Load() != 1 {
			t.Fatalf("calls primary=%d owner=%d, want 0/1", primaryCalls.Load(), ownerCalls.Load())
		}
	})

	t.Run("5xx evicts", func(t *testing.T) {
		c, _, primaryCalls, _ := newPair(t, http.StatusServiceUnavailable, "")
		if _, err := c.Forecast("s", 1); err == nil {
			t.Fatal("expected a 503 error")
		}
		if got := c.owner("s"); got != "" {
			t.Fatalf("owner hint = %q after 503, want evicted", got)
		}
		// The next request falls back to the primary base.
		if _, err := c.Forecast("s", 1); err != nil {
			t.Fatal(err)
		}
		if primaryCalls.Load() != 1 {
			t.Fatalf("primary saw %d calls after eviction, want 1", primaryCalls.Load())
		}
	})

	t.Run("transport error evicts", func(t *testing.T) {
		c, owner, primaryCalls, _ := newPair(t, http.StatusOK, "")
		owner.Close() // the hinted node is gone: connection refused
		if _, err := c.Forecast("s", 1); err == nil {
			t.Fatal("expected a transport error")
		}
		if got := c.owner("s"); got != "" {
			t.Fatalf("owner hint = %q after transport error, want evicted", got)
		}
		if _, err := c.Forecast("s", 1); err != nil {
			t.Fatal(err)
		}
		if primaryCalls.Load() != 1 {
			t.Fatalf("primary saw %d calls after eviction, want 1", primaryCalls.Load())
		}
	})

	t.Run("error with owner hint re-learns", func(t *testing.T) {
		next := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(ForecastResponse{})
		}))
		defer next.Close()
		// The hinted owner is draining: it answers 503 but names the new
		// owner. The client must adopt the named owner, not fall back.
		c, _, primaryCalls, _ := newPair(t, http.StatusServiceUnavailable, next.URL)
		if _, err := c.Forecast("s", 1); err == nil {
			t.Fatal("expected a 503 error")
		}
		if got := c.owner("s"); got != next.URL {
			t.Fatalf("owner hint = %q after hinted 503, want %q", got, next.URL)
		}
		if _, err := c.Forecast("s", 1); err != nil {
			t.Fatal(err)
		}
		if primaryCalls.Load() != 0 {
			t.Fatalf("primary saw %d calls, want 0 (hint re-learned)", primaryCalls.Load())
		}
	})

	t.Run("success hint updates the cache", func(t *testing.T) {
		c, owner, _, ownerCalls := newPair(t, http.StatusOK, "")
		if _, err := c.Forecast("s", 1); err != nil {
			t.Fatal(err)
		}
		if got := c.owner("s"); got != owner.URL {
			t.Fatalf("owner hint = %q, want %q", got, owner.URL)
		}
		if ownerCalls.Load() != 1 {
			t.Fatalf("owner saw %d calls, want 1", ownerCalls.Load())
		}
	})
}
