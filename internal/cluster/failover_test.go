package cluster_test

import (
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"smiler/internal/server"
)

// TestClusterFailover is the headline scenario: the owner dies
// mid-stream, and within the probe window its replica serves forecasts
// tagged Degraded "replica" while refusing writes.
func TestClusterFailover(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "failover-sensor"
	hist := seasonal(rand.New(rand.NewSource(10)), 440)

	owner := ownerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	var route struct {
		Preference []string `json:"preference"`
	}
	getJSON(t, owner.ts.URL+"/cluster/ring?sensor="+sensor, &route)
	follower := byID(t, nodes, route.Preference[1])

	// Stream observations and let replication catch up mid-stream.
	if err := cl.ObserveBatch(sensor, hist[400:420]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)
	waitFor(t, 5*time.Second, "replica to catch up before the crash", func() bool {
		got, _ := follower.sys.HistoryLen(sensor)
		return got == 420
	})

	// Kill the owner's listener: probes start failing.
	owner.ts.Close()

	// Within the probe window every survivor promotes the replica and
	// serves (degraded) forecasts for the sensor.
	var surviving []*testNode
	for _, tn := range nodes {
		if tn != owner {
			surviving = append(surviving, tn)
		}
	}
	for _, entry := range surviving {
		entryCl, err := server.NewClient(entry.ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		var f server.ForecastResponse
		waitFor(t, 5*time.Second, "degraded forecast via "+entry.id, func() bool {
			f, err = entryCl.Forecast(sensor, 1)
			return err == nil && f.Degraded
		})
		if f.DegradedReason != "replica" {
			t.Fatalf("degraded_reason = %q, want %q", f.DegradedReason, "replica")
		}
		if f.Mean == 0 && f.Variance == 0 {
			t.Fatalf("degraded forecast carries no prediction: %+v", f)
		}
	}

	// Writes must be refused while the primary is gone — a promoted
	// replica never accepts mutations, so the primary's return cannot
	// produce divergent histories.
	resp, err := http.Post(follower.ts.URL+"/sensors/"+sensor+"/observe",
		"application/json", strings.NewReader(`{"value": 50}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write during failover: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during failover must carry Retry-After")
	}

	// The failure is visible on /metrics: failover and promoted-serve
	// counters moved, and the replication-lag gauge is exported.
	body := getMetrics(t, follower.ts.URL)
	for _, want := range []string{
		"smiler_cluster_failovers_total",
		"smiler_cluster_promoted_serves_total",
		"smiler_cluster_replication_lag_frames",
		"smiler_cluster_write_rejects_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics is missing %s", want)
		}
	}
	if !metricAtLeast(t, body, "smiler_cluster_failovers_total", 1) {
		t.Fatalf("failovers counter did not move:\n%s", body)
	}
	if !metricAtLeast(t, body, "smiler_cluster_promoted_serves_total", 1) {
		t.Fatalf("promoted-serve counter did not move:\n%s", body)
	}
}

// TestClusterSmoke drives the full lifecycle through one entry node:
// register, observe, forecast, inspect the ring, and verify the
// cluster counters are all exported. This is the test `make
// cluster-smoke` runs.
func TestClusterSmoke(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	rng := rand.New(rand.NewSource(11))
	entry := nodes[0]
	cl, err := server.NewClient(entry.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	sensors := []string{"smoke-a", "smoke-b", "smoke-c", "smoke-d"}
	for _, s := range sensors {
		if err := cl.AddSensor(s, seasonal(rng, 400)); err != nil {
			t.Fatalf("add %s: %v", s, err)
		}
	}
	for i := 0; i < 20; i++ {
		for _, s := range sensors {
			if err := cl.Observe(s, 50+rng.NormFloat64()); err != nil {
				t.Fatalf("observe %s: %v", s, err)
			}
		}
	}
	drainAll(t, nodes)
	for _, s := range sensors {
		f, err := cl.Forecast(s, 1)
		if err != nil {
			t.Fatalf("forecast %s: %v", s, err)
		}
		if f.Degraded {
			t.Fatalf("healthy cluster served degraded forecast for %s: %+v", s, f)
		}
		own := ownerOf(t, nodes, s)
		if got, _ := own.sys.HistoryLen(s); got != 420 {
			t.Fatalf("sensor %s history on owner %s = %d, want 420", s, own.id, got)
		}
	}

	// Every node exports the cluster metric family.
	for _, tn := range nodes {
		body := getMetrics(t, tn.ts.URL)
		for _, want := range []string{
			"smiler_cluster_replication_lag_frames",
			"smiler_cluster_peer_up",
			"smiler_cluster_replicated_frames_total",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("node %s /metrics missing %s", tn.id, want)
			}
		}
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricAtLeast reports whether any sample line of the named metric has
// a value >= min.
func metricAtLeast(t *testing.T, body, name string, min float64) bool {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v >= min {
			return true
		}
	}
	return false
}
