package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeData samples a smooth 1-feature-per-dim function with noise.
func makeData(rng *rand.Rand, n, dim int, noise float64) (x [][]float64, y []float64) {
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		xi := make([]float64, dim)
		s := 0.0
		for j := range xi {
			xi[j] = rng.NormFloat64()
			s += math.Sin(xi[j])
		}
		x[i] = xi
		y[i] = s + rng.NormFloat64()*noise
	}
	return x, y
}

func defaultHyper() Hyper { return Hyper{Signal: 1, Length: 1, Noise: 0.1} }

func TestHyperValidate(t *testing.T) {
	if err := defaultHyper().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Hyper{
		{Signal: 0, Length: 1, Noise: 1},
		{Signal: 1, Length: -1, Noise: 1},
		{Signal: 1, Length: 1, Noise: 0},
		{Signal: math.NaN(), Length: 1, Noise: 1},
	}
	for i, h := range bad {
		if err := h.Validate(); !errors.Is(err, ErrNegHyper) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, defaultHyper()); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, defaultHyper()); !errors.Is(err, ErrDims) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, defaultHyper()); !errors.Is(err, ErrDims) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, Hyper{}); !errors.Is(err, ErrNegHyper) {
		t.Fatalf("err = %v", err)
	}
}

func TestPredictInterpolatesTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeData(rng, 30, 2, 0.01)
	hp := Hyper{Signal: 1.5, Length: 1, Noise: 0.05}
	m, err := Fit(x, y, hp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 30 || m.Hyper() != hp {
		t.Fatal("accessors wrong")
	}
	for i := range x {
		mean, v, err := m.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-y[i]) > 0.2 {
			t.Fatalf("point %d: mean %v far from target %v", i, mean, y[i])
		}
		if v <= 0 {
			t.Fatalf("point %d: nonpositive variance %v", i, v)
		}
	}
}

func TestPredictRevertsToPriorFarAway(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := makeData(rng, 20, 1, 0.05)
	hp := Hyper{Signal: 1, Length: 0.5, Noise: 0.1}
	m, err := Fit(x, y, hp)
	if err != nil {
		t.Fatal(err)
	}
	mean, v, err := m.Predict([]float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean) > 1e-6 {
		t.Fatalf("far-field mean %v, want ≈0", mean)
	}
	prior := hp.Signal*hp.Signal + hp.Noise*hp.Noise
	if math.Abs(v-prior) > 1e-6 {
		t.Fatalf("far-field variance %v, want prior %v", v, prior)
	}
}

func TestPredictVarianceShrinksNearData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeData(rng, 25, 1, 0.05)
	m, err := Fit(x, y, Hyper{Signal: 1, Length: 1, Noise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	_, vNear, err := m.Predict(x[0])
	if err != nil {
		t.Fatal(err)
	}
	_, vFar, err := m.Predict([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if vNear >= vFar {
		t.Fatalf("variance near data (%v) should be < far from data (%v)", vNear, vFar)
	}
}

func TestPredictDimError(t *testing.T) {
	m, err := Fit([][]float64{{1, 2}}, []float64{1}, defaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDimInput) {
		t.Fatalf("err = %v", err)
	}
}

// LOO via the partitioned inverse must equal brute-force leave-one-out
// refitting — the identity the online training relies on.
func TestLOOMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := makeData(rng, 14, 2, 0.1)
	hp := Hyper{Signal: 1.2, Length: 0.8, Noise: 0.2}
	m, err := Fit(x, y, hp)
	if err != nil {
		t.Fatal(err)
	}
	means, vars, err := m.LOOResiduals()
	if err != nil {
		t.Fatal(err)
	}
	var wantLL float64
	for i := range x {
		// Refit without point i.
		var xs [][]float64
		var ys []float64
		for j := range x {
			if j != i {
				xs = append(xs, x[j])
				ys = append(ys, y[j])
			}
		}
		mi, err := Fit(xs, ys, hp)
		if err != nil {
			t.Fatal(err)
		}
		mu, v, err := mi.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mu-means[i]) > 1e-6 {
			t.Fatalf("point %d: LOO mean %v vs brute %v", i, means[i], mu)
		}
		if math.Abs(v-vars[i]) > 1e-6 {
			t.Fatalf("point %d: LOO var %v vs brute %v", i, vars[i], v)
		}
		d := y[i] - mu
		wantLL += -0.5*math.Log(v) - d*d/(2*v) - 0.5*math.Log(2*math.Pi)
	}
	ll, err := m.LOO()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-wantLL) > 1e-6 {
		t.Fatalf("LOO %v vs brute-force %v", ll, wantLL)
	}
}

// The analytic gradient must match central finite differences.
func TestLOOGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := makeData(rng, 12, 2, 0.15)
	hp := Hyper{Signal: 0.9, Length: 1.1, Noise: 0.25}
	scr := newEvalScratch(len(y))
	defer scr.release()
	_, grad, err := looValueGrad(directSet(x, y), hp, scr)
	if err != nil {
		t.Fatal(err)
	}
	psi := toLog(hp)
	const eps = 1e-5
	for p := 0; p < 3; p++ {
		up, dn := psi, psi
		up[p] += eps
		dn[p] -= eps
		fu, _, err := looValueGrad(directSet(x, y), up.hyper(), scr)
		if err != nil {
			t.Fatal(err)
		}
		fd, _, err := looValueGrad(directSet(x, y), dn.hyper(), scr)
		if err != nil {
			t.Fatal(err)
		}
		num := (fu - fd) / (2 * eps)
		if math.Abs(num-grad[p]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d: analytic %v vs numeric %v", p, grad[p], num)
		}
	}
}

func TestOptimizeImprovesLOO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := makeData(rng, 24, 2, 0.1)
	init := Hyper{Signal: 0.3, Length: 3, Noise: 0.5} // deliberately bad
	m0, err := Fit(x, y, init)
	if err != nil {
		t.Fatal(err)
	}
	ll0, err := m0.LOO()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(x, y, init, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.LOO < ll0 {
		t.Fatalf("optimization worsened LOO: %v -> %v", ll0, res.LOO)
	}
	if res.LOO-ll0 < 1 {
		t.Fatalf("optimization barely moved: %v -> %v", ll0, res.LOO)
	}
	if err := res.Hyper.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 {
		t.Fatal("Evals not counted")
	}
}

func TestOptimizeArgErrors(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := Optimize(x, y, Hyper{}, 5); err == nil {
		t.Fatal("invalid init should fail")
	}
	if _, err := Optimize(x, y, defaultHyper(), -1); err == nil {
		t.Fatal("negative maxIter should fail")
	}
}

func TestOptimizeZeroIterationsIsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := makeData(rng, 10, 1, 0.1)
	res, err := Optimize(x, y, defaultHyper(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := defaultHyper()
	if res.Evals != 1 ||
		math.Abs(res.Hyper.Signal-want.Signal) > 1e-12 ||
		math.Abs(res.Hyper.Length-want.Length) > 1e-12 ||
		math.Abs(res.Hyper.Noise-want.Noise) > 1e-12 {
		t.Fatalf("res = %+v", res)
	}
}

func TestHeuristicHyper(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := makeData(rng, 40, 3, 0.1)
	hp := HeuristicHyper(x, y)
	if err := hp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate inputs still give usable seeds.
	hp = HeuristicHyper([][]float64{{1}}, []float64{2})
	if err := hp.Validate(); err != nil {
		t.Fatal(err)
	}
	hp = HeuristicHyper([][]float64{{1}, {1}}, []float64{2, 2})
	if err := hp.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions are finite with positive variance for random
// smooth data and sane hyperparameters.
func TestQuickPredictWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		dim := 1 + rng.Intn(5)
		x, y := makeData(rng, n, dim, 0.2)
		hp := Hyper{
			Signal: 0.2 + rng.Float64()*2,
			Length: 0.2 + rng.Float64()*2,
			Noise:  0.05 + rng.Float64(),
		}
		m, err := Fit(x, y, hp)
		if err != nil {
			return false
		}
		probe := make([]float64, dim)
		for j := range probe {
			probe[j] = rng.NormFloat64() * 2
		}
		mean, v, err := m.Predict(probe)
		if err != nil {
			return false
		}
		return !math.IsNaN(mean) && !math.IsInf(mean, 0) && v > 0 &&
			v <= hp.Signal*hp.Signal+hp.Noise*hp.Noise+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicated training points (the overlapping-segment case
// the semi-lazy kNN sets produce) stay numerically stable thanks to
// the noise diagonal and the jitter ladder.
func TestQuickDuplicatedPointsStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []float64{rng.NormFloat64(), rng.NormFloat64()}
		n := 4 + rng.Intn(20)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{base[0], base[1]} // identical inputs
			y[i] = rng.NormFloat64()
		}
		m, err := Fit(x, y, Hyper{Signal: 1, Length: 1, Noise: 0.1})
		if err != nil {
			return false
		}
		mean, v, err := m.Predict(base)
		return err == nil && !math.IsNaN(mean) && v > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitPredict32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := makeData(rng, 32, 64, 0.1)
	probe := x[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := Fit(x, y, defaultHyper())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.Predict(probe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimize32x5(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x, y := makeData(rng, 32, 64, 0.1)
	init := HeuristicHyper(x, y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(x, y, init, 5); err != nil {
			b.Fatal(err)
		}
	}
}
