package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"smiler/internal/ingest"
)

// Client is a typed HTTP client for the SMiLer service. It is a thin
// convenience wrapper for tools and tests; any HTTP client works.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a service at base (e.g. "http://localhost:8080").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("server: invalid base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("server: base URL %q must be absolute", base)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: u.String(), hc: httpClient}, nil
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s %s: %s (HTTP %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// AddSensor registers a sensor with its history.
func (c *Client) AddSensor(id string, history []float64) error {
	return c.do(http.MethodPost, "/sensors", AddSensorRequest{ID: id, History: history}, nil)
}

// RemoveSensor deletes a sensor.
func (c *Client) RemoveSensor(id string) error {
	return c.do(http.MethodDelete, "/sensors/"+url.PathEscape(id), nil, nil)
}

// Sensors lists registered sensor ids.
func (c *Client) Sensors() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/sensors", nil, &out)
	return out, err
}

// Forecast requests an h-step-ahead forecast.
func (c *Client) Forecast(id string, h int) (ForecastResponse, error) {
	var out ForecastResponse
	err := c.do(http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecast?h=%d", url.PathEscape(id), h), nil, &out)
	return out, err
}

// Observe streams one observation.
func (c *Client) Observe(id string, value float64) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Value: &value}, nil)
}

// ObserveBatch streams several observations in order.
func (c *Client) ObserveBatch(id string, values []float64) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Values: values}, nil)
}

// Ensemble fetches the sensor's auto-tuning weights.
func (c *Client) Ensemble(id string) ([]EnsembleCell, error) {
	var out []EnsembleCell
	err := c.do(http.MethodGet, "/sensors/"+url.PathEscape(id)+"/ensemble", nil, &out)
	return out, err
}

// Stats fetches system statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Healthz checks liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Forecasts requests several horizons from one shared kNN search.
func (c *Client) Forecasts(id string, hs []int) ([]ForecastResponse, error) {
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = fmt.Sprint(h)
	}
	var out []ForecastResponse
	err := c.do(http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecasts?hs=%s", url.PathEscape(id), strings.Join(parts, ",")),
		nil, &out)
	return out, err
}

// SendReadings posts raw timestamped readings for grid regularization
// (requires a server built with NewWithInterval).
func (c *Client) SendReadings(id string, readings []Reading) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/readings",
		ReadingsRequest{Readings: readings}, nil)
}

// ObserveMany bulk-ingests observations spanning many sensors in one
// request and reports per-item outcomes.
func (c *Client) ObserveMany(obs []ingest.Observation) (ingest.BulkResult, error) {
	var out ingest.BulkResult
	err := c.do(http.MethodPost, "/observations", BulkObserveRequest{Observations: obs}, &out)
	return out, err
}

// PipelineStats fetches the ingestion pipeline counters.
func (c *Client) PipelineStats() (ingest.Stats, error) {
	var out ingest.Stats
	err := c.do(http.MethodGet, "/pipeline/stats", nil, &out)
	return out, err
}
