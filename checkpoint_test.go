package smiler

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(1))
	all := noisySeasonal(rng, 460, 10, 100)
	if err := sys.AddSensor("a", all[:400]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSensor("b", noisySeasonal(rng, 400, 3, 0)); err != nil {
		t.Fatal(err)
	}
	// Run some steps so the ensemble weights drift away from uniform.
	for i := 400; i < 430; i++ {
		if _, err := sys.Predict("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Observe("a", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	wantWeights, err := sys.EnsembleWeights("a")
	if err != nil {
		t.Fatal(err)
	}
	wantForecast, err := sys.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	ids := restored.Sensors()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("restored sensors = %v", ids)
	}
	gotWeights, err := restored.EnsembleWeights("a")
	if err != nil {
		t.Fatal(err)
	}
	for kd, w := range wantWeights {
		if math.Abs(gotWeights[kd]-w) > 1e-9 {
			t.Fatalf("weight %v: %v vs %v", kd, gotWeights[kd], w)
		}
	}
	gotForecast, err := restored.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotForecast.Mean-wantForecast.Mean) > 1e-6 {
		t.Fatalf("restored forecast %v, want %v", gotForecast.Mean, wantForecast.Mean)
	}
	if math.Abs(gotForecast.Variance-wantForecast.Variance) > 1e-6 {
		t.Fatalf("restored variance %v, want %v", gotForecast.Variance, wantForecast.Variance)
	}
	// Streaming must keep working on the restored system (raw units).
	if err := restored.Observe("a", all[430]); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointGPHyperSurvives(t *testing.T) {
	cfg := smallConfig()
	cfg.Predictor = PredictorGP
	cfg.EKV = []int{4}
	cfg.ELV = []int{16}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(2))
	all := noisySeasonal(rng, 420, 5, 20)
	if err := sys.AddSensor("s", all[:400]); err != nil {
		t.Fatal(err)
	}
	// Train the GP warm-start state.
	for i := 400; i < 405; i++ {
		if _, err := sys.Predict("s", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Observe("s", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	f1, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	f2, err := restored.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started optimization from the same hyperparameters on the
	// same kNN set must land on the same prediction.
	if math.Abs(f1.Mean-f2.Mean) > 1e-6 {
		t.Fatalf("restored GP forecast %v, want %v", f2.Mean, f1.Mean)
	}
}

func TestCheckpointErrors(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 1, 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Normalization mismatch is rejected.
	badCfg := cfg
	badCfg.Normalize = false
	if _, err := Load(bytes.NewReader(buf.Bytes()), badCfg); err == nil {
		t.Fatal("normalization mismatch should fail")
	}
	// Garbage payload is rejected.
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint")), cfg); err == nil {
		t.Fatal("garbage payload should fail")
	}
	// Saving a closed system fails.
	sys.Close()
	if err := sys.SaveTo(&buf); err == nil {
		t.Fatal("SaveTo after Close should fail")
	}
}
