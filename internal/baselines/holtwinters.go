package baselines

import (
	"errors"
	"fmt"
	"math"
)

// HoltWinters is additive triple exponential smoothing with a daily
// season [71, 38] — the paper's statistical-regression baseline.
// "FullHW" refits on the entire history before every prediction;
// "SegHW" refits on a trailing window (the paper uses 10 days). The
// smoothing constants (α, β, γ) are chosen by minimizing one-step
// squared error over a coarse grid, mirroring the R forecast package's
// SSE optimization.
type HoltWinters struct {
	// Period is the season length in samples (one day).
	Period int
	// Window limits fitting to the trailing Window points; 0 = full
	// history.
	Window int

	name string

	// Fitted state.
	alpha, beta, gamma float64
	level, trend       float64
	season             []float64
	seasonIdx          int
	resVar             float64
	trained            bool
}

// NewFullHW builds the full-history variant for the given daily period.
func NewFullHW(period int) *HoltWinters {
	return &HoltWinters{Period: period, name: "FullHW"}
}

// NewSegHW builds the windowed variant fitting on the last `days` days.
func NewSegHW(period, days int) *HoltWinters {
	return &HoltWinters{Period: period, Window: period * days, name: "SegHW"}
}

// Name identifies the variant.
func (hw *HoltWinters) Name() string { return hw.name }

// hwState is the smoothing recursion state for one (α,β,γ) candidate.
type hwState struct {
	level, trend float64
	season       []float64
	idx          int
}

func initState(series []float64, period int) (hwState, error) {
	if len(series) < 2*period {
		return hwState{}, fmt.Errorf("%w: need ≥ 2 periods (%d points), have %d",
			ErrNoData, 2*period, len(series))
	}
	var m1, m2 float64
	for i := 0; i < period; i++ {
		m1 += series[i]
		m2 += series[period+i]
	}
	m1 /= float64(period)
	m2 /= float64(period)
	st := hwState{
		level:  m1,
		trend:  (m2 - m1) / float64(period),
		season: make([]float64, period),
	}
	for i := 0; i < period; i++ {
		st.season[i] = series[i] - m1
	}
	return st, nil
}

// run smooths the series from the initial state, returning the sum of
// squared one-step errors and the final state.
func run(series []float64, period int, a, b, g float64, st hwState) (float64, hwState) {
	var sse float64
	for t := period; t < len(series); t++ {
		si := t % period
		forecast := st.level + st.trend + st.season[si]
		err := series[t] - forecast
		sse += err * err
		prevLevel := st.level
		st.level = a*(series[t]-st.season[si]) + (1-a)*(st.level+st.trend)
		st.trend = b*(st.level-prevLevel) + (1-b)*st.trend
		st.season[si] = g*(series[t]-st.level) + (1-g)*st.season[si]
		st.idx = t
	}
	return sse, st
}

// Fit estimates (α,β,γ) on the series (or its trailing window) and
// leaves the model positioned at the end of the series.
func (hw *HoltWinters) Fit(series []float64) error {
	if hw.Period <= 1 {
		return fmt.Errorf("baselines: Holt-Winters period %d must be > 1", hw.Period)
	}
	data := series
	if hw.Window > 0 && len(data) > hw.Window {
		data = data[len(data)-hw.Window:]
	}
	init, err := initState(data, hw.Period)
	if err != nil {
		return err
	}
	grid := []float64{0.05, 0.2, 0.5, 0.8}
	bestSSE := math.Inf(1)
	var bestState hwState
	for _, a := range grid {
		for _, b := range grid {
			for _, g := range grid {
				st := init
				st.season = append([]float64(nil), init.season...)
				sse, end := run(data, hw.Period, a, b, g, st)
				if sse < bestSSE {
					bestSSE = sse
					hw.alpha, hw.beta, hw.gamma = a, b, g
					bestState = end
				}
			}
		}
	}
	if math.IsInf(bestSSE, 1) {
		return errors.New("baselines: Holt-Winters grid search failed")
	}
	hw.level = bestState.level
	hw.trend = bestState.trend
	hw.season = bestState.season
	hw.seasonIdx = bestState.idx
	steps := len(data) - hw.Period
	if steps < 1 {
		steps = 1
	}
	hw.resVar = bestSSE / float64(steps)
	if hw.resVar < varFloor {
		hw.resVar = varFloor
	}
	hw.trained = true
	return nil
}

// Forecast predicts h steps past the end of the fitted data. The
// variance uses the standard additive Holt-Winters forecast-error
// recursion: Var_h = σ̂²·(1 + Σ_{j=1}^{h−1} c_j²) with
// c_j = α(1+jβ) + γ·1{j ≡ 0 mod period}.
func (hw *HoltWinters) Forecast(h int) (Prediction, error) {
	if !hw.trained {
		return Prediction{}, ErrNotTrained
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	si := (hw.seasonIdx + h) % hw.Period
	mean := hw.level + float64(h)*hw.trend + hw.season[si]
	v := 1.0
	for j := 1; j < h; j++ {
		c := hw.alpha * (1 + float64(j)*hw.beta)
		if j%hw.Period == 0 {
			c += hw.gamma
		}
		v += c * c
	}
	return Prediction{Mean: mean, Variance: hw.resVar * v}, nil
}

// Params returns the fitted smoothing constants.
func (hw *HoltWinters) Params() (alpha, beta, gamma float64) {
	return hw.alpha, hw.beta, hw.gamma
}
