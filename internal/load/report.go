package load

import (
	"encoding/json"
	"os"
	"time"
)

// ReportSchema versions the JSON layout of the loader report.
const ReportSchema = "smiler-loader/v1"

// Report is the machine-readable outcome of one load run — the shape
// committed as BENCH_cluster.json so the perf trajectory of the
// serving layer is tracked the same way BENCH_predict.json tracks the
// prediction hot path.
type Report struct {
	Schema   string    `json:"schema"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`

	// Workload echoes the effective configuration so a report is
	// reproducible from itself.
	Workload WorkloadInfo `json:"workload"`

	// Setup summarizes sensor registration (absent with SkipSetup).
	Setup *SetupSummary `json:"setup,omitempty"`

	// Phases maps phase name ("ramp", "steady") to its measurements.
	// SLOs are judged on "steady" only.
	Phases map[string]PhaseSummary `json:"phases"`

	// SLOs are the judged objectives; Violations counts the failures.
	SLOs       []SLOResult `json:"slos,omitempty"`
	Violations int         `json:"violations"`

	// DistinctSensors counts sensors hit by at least one op during the
	// run — the substantiation of a "drove N sensors" claim.
	DistinctSensors int `json:"distinct_sensors"`

	// GCWindows is the steady-phase GC-pause vs. latency series: one
	// entry per (progress window, target), pairing the target's GC
	// pause deltas with the window's forecast percentiles. Empty when
	// progress reporting is off or the run never reached steady state.
	GCWindows []GCWindow `json:"gc_windows,omitempty"`
}

// WorkloadInfo is the reproducibility block of a report.
type WorkloadInfo struct {
	Targets        []string          `json:"targets"`
	Sensors        int               `json:"sensors"`
	Kind           string            `json:"kind"`
	Seed           int64             `json:"seed"`
	History        int               `json:"history"`
	ObserveWeight  int               `json:"observe_weight"`
	ForecastWeight int               `json:"forecast_weight"`
	Horizons       []WeightedHorizon `json:"horizons"`
	Arrival        string            `json:"arrival"`
	RatePerS       float64           `json:"rate_per_s,omitempty"`
	Concurrency    int               `json:"concurrency"`
	BurstFactor    float64           `json:"burst_factor,omitempty"`
	BurstPeriodS   float64           `json:"burst_period_s,omitempty"`
	BurstDuty      float64           `json:"burst_duty,omitempty"`
	RampS          float64           `json:"ramp_s"`
	DurationS      float64           `json:"duration_s"`
	RetryAttempts  int               `json:"retry_attempts"`
}

// SetupSummary reports the registration phase.
type SetupSummary struct {
	Registered int     `json:"registered"`
	Existing   int     `json:"existing"`
	Errors     int     `json:"errors"`
	DurationS  float64 `json:"duration_s"`
	PerS       float64 `json:"sensors_per_s"`
}

func workloadInfo(cfg Config) WorkloadInfo {
	w := WorkloadInfo{
		Targets:        cfg.Targets,
		Sensors:        cfg.Sensors,
		Kind:           cfg.Kind.String(),
		Seed:           cfg.Seed,
		History:        cfg.History,
		ObserveWeight:  cfg.ObserveWeight,
		ForecastWeight: cfg.ForecastWeight,
		Horizons:       cfg.Horizons,
		Arrival:        cfg.Arrival.String(),
		Concurrency:    cfg.Concurrency,
		RampS:          cfg.Ramp.Seconds(),
		DurationS:      cfg.Duration.Seconds(),
		RetryAttempts:  cfg.RetryAttempts,
	}
	if cfg.Arrival != ClosedLoop {
		w.RatePerS = cfg.Rate
	}
	if cfg.Arrival == Bursty {
		w.BurstFactor = cfg.BurstFactor
		w.BurstPeriodS = cfg.BurstPeriod.Seconds()
		w.BurstDuty = cfg.BurstDuty
	}
	return w
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
