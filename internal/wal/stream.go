package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Streaming frames. The cluster replication and migration layers ship
// WAL records between nodes over HTTP using the exact on-disk envelope
// — uint32 LE length | payload | uint32 LE CRC32C(payload) — so a
// truncated or bit-flipped stream is detected the same way a torn
// segment tail is. The stream payload differs from the disk payload in
// one way: it is prefixed with the record's stream sequence number
// (uvarint), which followers use to drop duplicates and detect gaps.

// ErrCorruptFrame is returned by FrameReader.Next when a frame fails
// its CRC or structural checks — the stream was truncated mid-frame or
// damaged in transit.
var ErrCorruptFrame = errors.New("wal: corrupt stream frame")

// EncodeFrame appends one framed record, tagged with its stream
// sequence number, to buf and returns the extended slice.
func EncodeFrame(buf []byte, seq uint64, r Record) ([]byte, error) {
	start := len(buf)
	// Reserve the length header; the payload size is known only after
	// encoding.
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, seq)
	payload, err := appendPayload(buf, r)
	if err != nil {
		return buf[:start], err
	}
	buf = payload
	n := len(buf) - start - frameHeader
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	var crc [frameCRC]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf[start+frameHeader:], castagnoli))
	return append(buf, crc[:]...), nil
}

// FrameReader decodes a stream of frames written by EncodeFrame.
type FrameReader struct {
	rd      *bufio.Reader
	payload []byte
}

// NewFrameReader wraps r for frame-by-frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{rd: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record and its stream sequence number. It
// returns io.EOF at a clean end of stream and ErrCorruptFrame when the
// stream ends mid-frame or a frame fails its checksum — everything
// decoded before the bad frame is still valid, mirroring torn-tail
// recovery on disk.
func (fr *FrameReader) Next() (seq uint64, rec Record, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(fr.rd, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, rec, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, rec, ErrCorruptFrame
		}
		return 0, rec, fmt.Errorf("wal: reading stream frame: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxPayload {
		return 0, rec, ErrCorruptFrame
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.rd, fr.payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, rec, ErrCorruptFrame
		}
		return 0, rec, fmt.Errorf("wal: reading stream frame: %w", err)
	}
	var crcBuf [frameCRC]byte
	if _, err := io.ReadFull(fr.rd, crcBuf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, rec, ErrCorruptFrame
		}
		return 0, rec, fmt.Errorf("wal: reading stream frame: %w", err)
	}
	if crc32.Checksum(fr.payload, castagnoli) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return 0, rec, ErrCorruptFrame
	}
	seq, sn := binary.Uvarint(fr.payload)
	if sn <= 0 {
		return 0, rec, ErrCorruptFrame
	}
	rec, derr := decodePayload(fr.payload[sn:])
	if derr != nil {
		return 0, rec, ErrCorruptFrame
	}
	return seq, rec, nil
}
