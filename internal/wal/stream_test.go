package wal

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecAddSensor, Sensor: "a", History: []float64{1, 2, 3.5, math.Pi}},
		{Type: RecObserve, Sensor: "a", Value: 4.25},
		{Type: RecObserve, Sensor: "b/with/slashes", Value: -0.5},
		{Type: RecRemoveSensor, Sensor: "a"},
	}
	var buf []byte
	var err error
	for i, r := range recs {
		buf, err = EncodeFrame(buf, uint64(i+10), r)
		if err != nil {
			t.Fatalf("EncodeFrame: %v", err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range recs {
		seq, got, err := fr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if seq != uint64(i+10) {
			t.Fatalf("frame %d: seq %d, want %d", i, seq, i+10)
		}
		if got.Type != want.Type || got.Sensor != want.Sensor || got.Value != want.Value {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
		if len(got.History) != len(want.History) {
			t.Fatalf("frame %d: history %v, want %v", i, got.History, want.History)
		}
		for j := range want.History {
			if got.History[j] != want.History[j] {
				t.Fatalf("frame %d history[%d]: %v != %v", i, j, got.History[j], want.History[j])
			}
		}
	}
	if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestStreamTruncatedAndCorrupt(t *testing.T) {
	var buf []byte
	var err error
	buf, err = EncodeFrame(buf, 1, Record{Type: RecObserve, Sensor: "s", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	one := len(buf)
	buf, err = EncodeFrame(buf, 2, Record{Type: RecObserve, Sensor: "s", Value: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the second frame at every byte boundary: the first frame
	// must still decode, the second must come back ErrCorruptFrame.
	for cut := one + 1; cut < len(buf); cut++ {
		fr := NewFrameReader(bytes.NewReader(buf[:cut]))
		if _, _, err := fr.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		if _, _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("cut %d: want ErrCorruptFrame, got %v", cut, err)
		}
	}

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), buf...)
	bad[one+frameHeader+1] ^= 0x40
	fr := NewFrameReader(bytes.NewReader(bad))
	if _, _, err := fr.Next(); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if _, _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame on flipped byte, got %v", err)
	}
}
