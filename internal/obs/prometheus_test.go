package obs

import (
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func contains(haystack, needle string) bool { return strings.Contains(haystack, needle) }

// TestWritePrometheusGolden locks the exposition format: family order
// = registration order, child order = creation order, histograms
// expanded to cumulative le buckets + _sum + _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", L("route", "/a")).Add(3)
	r.Counter("test_requests_total", "Total requests.", L("route", "/b")).Inc()
	r.Gauge("test_temp", "Current temperature.").Set(1.5)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.25, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)

	want := `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{route="/a"} 3
test_requests_total{route="/b"} 1
# HELP test_temp Current temperature.
# TYPE test_temp gauge
test_temp 1.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.25"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 2.75
test_latency_seconds_count 3
`
	if got := scrape(t, r); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ and\nnewline", L("v", "a\"b\\c\nd")).Inc()
	got := scrape(t, r)
	if !contains(got, `# HELP esc_total help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !contains(got, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

// TestWritePrometheusEmptyFamilySkipped: CounterFunc-less families with
// no children emit nothing; an empty registry emits nothing.
func TestWritePrometheusEmpty(t *testing.T) {
	r := NewRegistry()
	if got := scrape(t, r); got != "" {
		t.Fatalf("empty registry scrape = %q", got)
	}
}
