// Quickstart: the minimal SMiLer workflow — register a sensor with
// some history, forecast ahead, stream observations, repeat.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"smiler"
)

func main() {
	// A synthetic sensor: a daily pattern with noise (48 samples/day).
	rng := rand.New(rand.NewSource(42))
	signal := func(t int) float64 {
		return 20 + 5*math.Sin(2*math.Pi*float64(t)/48) + rng.NormFloat64()*0.3
	}
	history := make([]float64, 1000)
	for t := range history {
		history[t] = signal(t)
	}

	// Build the system with the paper's default configuration:
	// ρ=8, ω=16, a 3×3 ensemble of GP predictors over
	// EKV={8,16,32} × ELV={32,64,96}, z-normalization on.
	sys, err := smiler.New(smiler.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if err := sys.AddSensor("demo", history); err != nil {
		log.Fatal(err)
	}

	// Continuous prediction: forecast one step ahead, observe the
	// truth, let the ensemble self-tune, repeat.
	fmt.Println("step | forecast           | 95% interval        | truth")
	var mae float64
	const steps = 10
	for t := 0; t < steps; t++ {
		f, err := sys.Predict("demo", 1)
		if err != nil {
			log.Fatal(err)
		}
		truth := signal(len(history) + t)
		lo, hi := f.Interval(1.96)
		fmt.Printf("%4d | %7.3f ± %-6.3f | [%7.3f, %7.3f] | %7.3f\n",
			t, f.Mean, f.StdDev(), lo, hi, truth)
		mae += math.Abs(f.Mean - truth)

		if err := sys.Observe("demo", truth); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nMAE over %d steps: %.4f\n", steps, mae/steps)

	// The ensemble weights reveal which (k, d) configuration the
	// auto-tuner currently trusts for this sensor.
	w, err := sys.EnsembleWeights("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nensemble weights (k, d) -> λ:")
	for kd, v := range w {
		fmt.Printf("  (k=%2d, d=%2d) -> %.3f\n", kd[0], kd[1], v)
	}
}
