package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smiler"
	"smiler/internal/obs"
)

// addPredictSensor registers a sensor and runs one prediction so the
// registry and trace store have real data.
func addPredictSensor(t *testing.T, cl *Client, id string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	if err := cl.AddSensor(id, seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Forecast(id, 1); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "m1")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE smiler_predictions_total counter",
		`smiler_predictions_total{quality="exact"} 1`,
		"# TYPE smiler_predict_phase_seconds histogram",
		`smiler_predict_phase_seconds_bucket{phase="search",le="+Inf"} 1`,
		`smiler_predict_phase_seconds_count{phase="total"} 1`,
		"smiler_knn_candidates_total",
		"smiler_knn_pruned_total",
		"smiler_knn_unfiltered_total",
		"smiler_sensors 1",
		`smiler_ingest_processed_total{shard="0"}`,
		"smiler_forecast_cache_hits_total",
		"smiler_forecast_cache_misses_total 1",
		"smiler_gp_fits_total",
		`smiler_http_requests_total{route="/sensors",method="POST",status="201"} 1`,
		"smiler_http_request_seconds_bucket",
		`smiler_http_request_seconds_count{route="/sensors",code="201"} 1`,
		`smiler_http_request_seconds_count{route="/sensors/{id}/forecast",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

func TestMetricsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DisableMetrics = true
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if resp, _ := get(t, ts, "/metrics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/x"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace with metrics disabled = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/events"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/events with metrics disabled = %d, want 404", resp.StatusCode)
	}
	// The rest of the API must still work with a nil registry.
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	addPredictSensor(t, cl, "quiet")
}

func TestTraceEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "t1")
	if _, err := cl.Forecast("t1", 2); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts, "/debug/trace/t1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var traces []obs.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	// Newest first: the horizon-2 call is traces[0].
	if traces[0].Horizons[0] != 2 || traces[1].Horizons[0] != 1 {
		t.Fatalf("trace order: %v then %v", traces[0].Horizons, traces[1].Horizons)
	}
	tr := traces[0]
	if tr.Sensor != "t1" || tr.TotalS <= 0 || tr.Error != "" {
		t.Fatalf("trace header = %+v", tr)
	}
	spans := make(map[string]bool)
	for _, sp := range tr.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"search", "lower_bound", "verify", "mix"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (have %v)", want, tr.Spans)
		}
	}
	hasFit := false
	for name := range spans {
		if strings.HasSuffix(name, "_fit") {
			hasFit = true
		}
	}
	if !hasFit {
		t.Errorf("trace missing a per-cell fit span (have %v)", tr.Spans)
	}
	for _, stat := range []string{"knn_candidates", "knn_pruned", "knn_unfiltered"} {
		if _, ok := tr.Stats[stat]; !ok {
			t.Errorf("trace missing stat %q (have %v)", stat, tr.Stats)
		}
	}

	// ?n limits and still returns newest first.
	resp, body = get(t, ts, "/debug/trace/t1?n=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?n=1 status = %d", resp.StatusCode)
	}
	traces = nil
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Horizons[0] != 2 {
		t.Fatalf("?n=1 = %+v", traces)
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "t2")
	if resp, _ := get(t, ts, "/debug/trace/"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/t2?n=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/nobody"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sensor = %d, want 404", resp.StatusCode)
	}
	// A registered sensor that has not predicted yet: empty list, not 404.
	rng := rand.New(rand.NewSource(8))
	if err := cl.AddSensor("idle", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts, "/debug/trace/idle")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("idle sensor = %d %q, want 200 []", resp.StatusCode, body)
	}
}

// TestTraceEndpointEscapedID is the regression test for sensor ids
// containing "/" or "%": sent percent-encoded, they must resolve via
// EscapedPath + PathUnescape instead of being split by the router's
// already-decoded path view.
func TestTraceEndpointEscapedID(t *testing.T) {
	ts, cl, sys := newTestServer(t)
	const id = "a/b%c" // worst case: both a path separator and a percent
	rng := rand.New(rand.NewSource(9))
	if err := cl.AddSensor(id, seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Predict(id, 1); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts, "/debug/trace/a%2Fb%25c")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("escaped id = %d, want 200: %s", resp.StatusCode, body)
	}
	var traces []obs.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Sensor != id {
		t.Fatalf("traces = %+v, want one for %q", traces, id)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts, _, sys := newTestServer(t)
	ring := sys.Events()
	if ring == nil {
		t.Fatal("system has no event ring")
	}
	ring.Record(obs.Event{Type: "failover", Severity: obs.SevError, Detail: "peer n2 down"})
	ring.Record(obs.Event{Type: "migration_cutover", Sensor: "s1", TraceID: "abc"})

	resp, body := get(t, ts, "/debug/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var er EventsResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if er.LastSeq != 2 || len(er.Events) != 2 {
		t.Fatalf("events = %+v, want last_seq=2 with 2 events", er)
	}
	if er.Events[0].Type != "failover" || er.Events[0].Severity != obs.SevError {
		t.Fatalf("first event = %+v", er.Events[0])
	}
	if er.Events[1].Type != "migration_cutover" || er.Events[1].TraceID != "abc" {
		t.Fatalf("second event = %+v", er.Events[1])
	}

	// Tail with since=: only events after the cursor come back.
	resp, body = get(t, ts, "/debug/events?since=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("since=1 status = %d", resp.StatusCode)
	}
	er = EventsResponse{}
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Events) != 1 || er.Events[0].Type != "migration_cutover" {
		t.Fatalf("since=1 events = %+v", er.Events)
	}

	if resp, _ := get(t, ts, "/debug/events?since=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", resp.StatusCode)
	}

	// The healthz body reflects the ring's high-water mark.
	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
	var hz HealthzResponse
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.EventsHighWater != 2 {
		t.Fatalf("healthz events_high_water = %d, want 2", hz.EventsHighWater)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, _ := get(t, ts, "/healthz")
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("no X-Request-Id generated")
	}
	resp, _ = get(t, ts, "/healthz")
	if id2 := resp.Header.Get("X-Request-Id"); id2 == id1 {
		t.Fatalf("request IDs not unique: %q", id2)
	}
	// A client-supplied ID is echoed back.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-123")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "client-123" {
		t.Fatalf("echoed ID = %q", got)
	}
}

func TestAccessLogLine(t *testing.T) {
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv, err := NewWithOptions(sys, Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
	line := buf.String()
	for _, want := range []string{"msg=request", "method=GET", "path=/healthz", "status=200", "latency=", "id="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

func TestNormalizeRoute(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/healthz", "/healthz"},
		{"/sensors", "/sensors"},
		{"/sensors/abc", "/sensors/{id}"},
		{"/sensors/abc/forecast", "/sensors/{id}/forecast"},
		{"/sensors/abc/observe", "/sensors/{id}/observe"},
		{"/debug/trace/xyz", "/debug/trace/{sensor}"},
		{"/metrics", "/metrics"},
	} {
		if got := normalizeRoute(tc.in); got != tc.want {
			t.Errorf("normalizeRoute(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}
