package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smiler/internal/bench"
	"smiler/internal/datasets"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty list should fail")
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestOverrideApply(t *testing.T) {
	spec := bench.DatasetSpec{
		Gen:  datasets.Config{Kind: datasets.Mall, Sensors: 4, Duplicates: 2, Days: 21},
		Warm: 2600, TestSteps: 200,
	}
	out := override{}.apply(spec)
	if out.Gen.Sensors != 4 || out.Warm != 2600 {
		t.Fatal("zero override must not change the spec")
	}
	out = override{sensors: 1, days: 7, warm: 900, testSteps: 10}.apply(spec)
	if out.Gen.Sensors != 1 || out.Gen.Duplicates != 0 || out.Gen.Days != 7 ||
		out.Warm != 900 || out.TestSteps != 10 {
		t.Fatalf("override not applied: %+v", out)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("fig8", "nope", "", 1, "32", "1", override{}); err == nil {
		t.Fatal("unknown scale should fail")
	}
	if err := run("fig8", "small", "", 1, "bad", "1", override{}); err == nil {
		t.Fatal("bad -ks should fail")
	}
	if err := run("fig8", "small", "", 1, "32", "bad", override{}); err == nil {
		t.Fatal("bad -hs should fail")
	}
	if err := run("fig8", "small", "NOPE", 1, "32", "1", override{}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if err := run("nope", "small", "ROAD", 1, "32", "1",
		override{sensors: 1, days: 5, warm: 620, testSteps: 4}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunFig8EndToEnd(t *testing.T) {
	err := run("fig8", "small", "ROAD", 2, "16", "1",
		override{sensors: 1, days: 5, warm: 620, testSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunMoreExperimentsEndToEnd exercises the remaining CLI arms at a
// micro scale (AR-only arms stay fast; fig12 includes a couple of GP
// steps).
func TestRunMoreExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end is slow")
	}
	ov := override{sensors: 1, days: 5, warm: 620, testSteps: 3}
	for _, exp := range []string{"table3", "ablation", "distance", "downsample", "profile", "fig12"} {
		if err := run(exp, "small", "ROAD", 2, "16", "1", ov); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunWritesTSV(t *testing.T) {
	ov := override{sensors: 1, days: 5, warm: 620, testSteps: 3, outDir: t.TempDir()}
	if err := run("fig7", "small", "ROAD", 2, "16", "1", ov); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(ov.outDir, "road_fig7.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "dataset\tmethod\tk\t") {
		t.Fatalf("tsv header wrong: %q", string(data[:40]))
	}
}
