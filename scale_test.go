package smiler

import (
	"errors"
	"math/rand"
	"testing"

	"smiler/internal/gpusim"
)

func TestMaxHistoryCapsFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hist := noisySeasonal(rng, 2000, 1, 0)

	full, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if err := full.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	fullUsed, _ := full.DeviceUsage()

	capped := smallConfig()
	capped.MaxHistory = 500
	sys, err := New(capped)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	cappedUsed, _ := sys.DeviceUsage()
	if cappedUsed >= fullUsed {
		t.Fatalf("capped footprint %d should be < full %d", cappedUsed, fullUsed)
	}
	// The capped system still predicts.
	if _, err := sys.Predict("s", 1); err != nil {
		t.Fatal(err)
	}

	bad := smallConfig()
	bad.MaxHistory = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative MaxHistory should fail")
	}
}

func TestMultiDevicePlacement(t *testing.T) {
	cfg := smallConfig()
	cfg.Devices = 3
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3; i++ {
		if err := sys.AddSensor(string(rune('a'+i)), noisySeasonal(rng, 400, 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	per := sys.DeviceUsagePer()
	if len(per) != 3 {
		t.Fatalf("got %d devices", len(per))
	}
	// Most-free placement must spread 3 equal sensors over 3 devices.
	for i, p := range per {
		if p[0] == 0 {
			t.Fatalf("device %d received no sensor: %v", i, per)
		}
	}
	// Sensors on different devices predict independently.
	if _, err := sys.PredictAll(1); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDeviceOverflowFallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Devices = 2
	cfg.Device.GlobalMemBytes = 40_000 // fits one small index per device
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(3))
	hist := noisySeasonal(rng, 400, 1, 0)
	if err := sys.AddSensor("a", hist); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSensor("b", hist); err != nil {
		t.Fatal(err)
	}
	// Both devices are now full; a third sensor must fail cleanly with
	// the device OOM error.
	err = sys.AddSensor("c", hist)
	if !errors.Is(err, gpusim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// And nothing leaked on the failure path.
	per := sys.DeviceUsagePer()
	if per[0][0] == 0 || per[1][0] == 0 {
		t.Fatalf("sensors should occupy both devices: %v", per)
	}
	if err := sys.RemoveSensor("a"); err != nil {
		t.Fatal(err)
	}
	// With space freed, the sensor fits again.
	if err := sys.AddSensor("c", hist); err != nil {
		t.Fatal(err)
	}
}
