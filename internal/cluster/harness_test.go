package cluster_test

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smiler"
	"smiler/internal/cluster"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

// testNode is one in-process cluster member: a real system, a real
// server, a real listener.
type testNode struct {
	id   string
	sys  *smiler.System
	srv  *server.Server
	ts   *httptest.Server
	node *cluster.Node
}

func testConfig() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func seasonal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.5
	}
	return out
}

// newTestCluster brings up size nodes with fast probes. mutate, when
// non-nil, adjusts each node's cluster config before it starts.
func newTestCluster(t *testing.T, size int, mutate func(*cluster.Config)) []*testNode {
	t.Helper()
	return newTestClusterSys(t, size, testConfig(), mutate)
}

// newTestClusterSys is newTestCluster with an explicit system config
// (e.g. hot-sensor tiering enabled).
func newTestClusterSys(t *testing.T, size int, sysCfg smiler.Config, mutate func(*cluster.Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, size)
	members := make([]cluster.Member, size)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		sys, err := smiler.New(sysCfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewWithOptions(sys, server.Options{
			NodeID:   id,
			Pipeline: ingest.Config{Shards: 2, QueueSize: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		nodes[i] = &testNode{id: id, sys: sys, srv: srv, ts: ts}
		members[i] = cluster.Member{ID: id, URL: ts.URL}
	}
	for _, tn := range nodes {
		cfg := cluster.Config{
			Self:              tn.id,
			Members:           members,
			Replicas:          1,
			ProbeInterval:     15 * time.Millisecond,
			ProbeFailures:     2,
			HeartbeatInterval: 10 * time.Millisecond,
			HTTPClient:        &http.Client{Timeout: 2 * time.Second},
		}
		if mutate != nil {
			mutate(&cfg)
		}
		node, err := cluster.New(tn.sys, tn.srv, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Close()
			tn.ts.Close()
			tn.srv.Close()
			tn.sys.Close()
		}
	})
	return nodes
}

// byID finds a node by member id.
func byID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.id == id {
			return tn
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// ownerOf asks the cluster who owns a sensor (via the first node).
func ownerOf(t *testing.T, nodes []*testNode, sensor string) *testNode {
	t.Helper()
	var route cluster.SensorRoute
	getJSON(t, nodes[0].ts.URL+"/cluster/ring?sensor="+sensor, &route)
	return byID(t, nodes, route.Owner)
}

// nonOwnerOf returns some live node that does not own the sensor.
func nonOwnerOf(t *testing.T, nodes []*testNode, sensor string) *testNode {
	t.Helper()
	owner := ownerOf(t, nodes, sensor)
	for _, tn := range nodes {
		if tn != owner {
			return tn
		}
	}
	t.Fatal("no non-owner node")
	return nil
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := jsonDecode(resp.Body, out); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainAll flushes every node's ingestion pipeline.
func drainAll(t *testing.T, nodes []*testNode) {
	t.Helper()
	for _, tn := range nodes {
		if err := tn.srv.Pipeline().Drain(); err != nil {
			t.Fatal(err)
		}
	}
}
