package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func arFactory() Predictor { return NewAR() }

func newTestEnsemble(t *testing.T, cfg EnsembleConfig) *Ensemble {
	t.Helper()
	e, err := NewEnsemble([]int{4, 8}, []int{16, 32}, arFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func awakeWeightSum(e *Ensemble) float64 {
	var s float64
	for _, c := range e.Cells() {
		s += c.Weight()
	}
	return s
}

func TestNewEnsembleErrors(t *testing.T) {
	if _, err := NewEnsemble(nil, []int{16}, arFactory, EnsembleConfig{}); err == nil {
		t.Fatal("empty EKV")
	}
	if _, err := NewEnsemble([]int{4}, nil, arFactory, EnsembleConfig{}); err == nil {
		t.Fatal("empty ELV")
	}
	if _, err := NewEnsemble([]int{0}, []int{16}, arFactory, EnsembleConfig{}); err == nil {
		t.Fatal("k=0")
	}
	if _, err := NewEnsemble([]int{4}, []int{0}, arFactory, EnsembleConfig{}); err == nil {
		t.Fatal("d=0")
	}
	if _, err := NewEnsemble([]int{4}, []int{16}, nil, EnsembleConfig{}); err == nil {
		t.Fatal("nil factory")
	}
}

func TestNewEnsembleShape(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{})
	if len(e.Cells()) != 4 {
		t.Fatalf("cells = %d, want 4", len(e.Cells()))
	}
	if e.MaxK() != 8 {
		t.Fatalf("MaxK = %d", e.MaxK())
	}
	if math.Abs(e.Eta()-1.0/8) > 1e-12 {
		t.Fatalf("eta = %v, want 1/8", e.Eta())
	}
	for _, c := range e.Cells() {
		if math.Abs(c.Weight()-0.25) > 1e-12 {
			t.Fatalf("initial weight %v, want 0.25", c.Weight())
		}
		if c.Sleeping() || c.SleepSpan() != 1 {
			t.Fatal("initial sleep state wrong")
		}
	}
}

func TestMixMoments(t *testing.T) {
	e, err := NewEnsemble([]int{1}, []int{1, 2}, arFactory, EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cells := e.Cells()
	preds := []CellPrediction{
		{Cell: cells[0], Pred: Prediction{Mean: 0, Variance: 1}},
		{Cell: cells[1], Pred: Prediction{Mean: 2, Variance: 1}},
	}
	mixed, err := e.Mix(preds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixed.Mean-1) > 1e-12 {
		t.Fatalf("mixture mean = %v, want 1", mixed.Mean)
	}
	// Second moment: ½(1+0) + ½(1+4) = 3 ⇒ var = 3 − 1 = 2.
	if math.Abs(mixed.Variance-2) > 1e-12 {
		t.Fatalf("mixture variance = %v, want 2", mixed.Variance)
	}
}

func TestMixNoAwake(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{})
	for _, c := range e.Cells() {
		c.sleeping = true
	}
	if _, err := e.Mix(nil); err == nil {
		t.Fatal("expected error with no awake predictors")
	}
}

func TestUpdateShiftsWeightTowardAccuratePredictor(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{DisableSleep: true})
	cells := e.Cells()
	for step := 0; step < 10; step++ {
		preds := []CellPrediction{
			{Cell: cells[0], Pred: Prediction{Mean: 1, Variance: 0.1}},  // accurate
			{Cell: cells[1], Pred: Prediction{Mean: 9, Variance: 0.1}},  // way off
			{Cell: cells[2], Pred: Prediction{Mean: 5, Variance: 10}},   // vague
			{Cell: cells[3], Pred: Prediction{Mean: -3, Variance: 0.1}}, // way off
		}
		e.Update(preds, 1.0)
	}
	if cells[0].Weight() <= cells[1].Weight() ||
		cells[0].Weight() <= cells[2].Weight() ||
		cells[0].Weight() <= cells[3].Weight() {
		t.Fatalf("accurate cell should dominate: %v %v %v %v",
			cells[0].Weight(), cells[1].Weight(), cells[2].Weight(), cells[3].Weight())
	}
	if math.Abs(awakeWeightSum(e)-1) > 1e-9 {
		t.Fatalf("weights must stay normalized, got %v", awakeWeightSum(e))
	}
}

func TestDisableAdaptationFreezesWeights(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{DisableAdaptation: true, DisableSleep: true})
	cells := e.Cells()
	preds := []CellPrediction{
		{Cell: cells[0], Pred: Prediction{Mean: 1, Variance: 0.1}},
		{Cell: cells[1], Pred: Prediction{Mean: 100, Variance: 0.1}},
	}
	for i := 0; i < 5; i++ {
		e.Update(preds, 1.0)
	}
	for _, c := range cells {
		if math.Abs(c.Weight()-0.25) > 1e-12 {
			t.Fatalf("weight drifted to %v with adaptation disabled", c.Weight())
		}
	}
}

func TestSleepAndRecovery(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{})
	cells := e.Cells()
	badCell := cells[1]
	push := func(steps int) {
		for s := 0; s < steps; s++ {
			var preds []CellPrediction
			for i, c := range cells {
				if c.Sleeping() {
					continue
				}
				mean := 1.0
				if i == 1 {
					mean = 50 // consistently terrible
				}
				preds = append(preds, CellPrediction{Cell: c, Pred: Prediction{Mean: mean, Variance: 0.1}})
			}
			e.Update(preds, 1.0)
		}
	}
	push(2)
	if !badCell.Sleeping() {
		t.Fatal("persistently bad cell should be asleep")
	}
	// It sleeps for ς=1 step, then recovers at weight η.
	push(1)
	if badCell.Sleeping() {
		t.Fatal("cell should have recovered after its sleep span")
	}
	if math.Abs(badCell.Weight()-e.Eta()) > 1e-6 {
		t.Fatalf("recovered weight %v, want η=%v", badCell.Weight(), e.Eta())
	}
	// Still terrible: next update puts it back to sleep and doubles ς.
	push(1)
	if !badCell.Sleeping() {
		t.Fatal("cell should be back asleep")
	}
	if badCell.SleepSpan() != 2 {
		t.Fatalf("sleep span = %d, want 2 after immediate re-sleep", badCell.SleepSpan())
	}
	if math.Abs(awakeWeightSum(e)-1) > 1e-9 {
		t.Fatalf("weights must stay normalized, got %v", awakeWeightSum(e))
	}
}

func TestSleepNeverKillsLastPredictor(t *testing.T) {
	e, err := NewEnsemble([]int{1}, []int{16}, arFactory, EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Cells()[0]
	for i := 0; i < 10; i++ {
		e.Update([]CellPrediction{{Cell: c, Pred: Prediction{Mean: 99, Variance: 0.1}}}, 0)
	}
	if c.Sleeping() {
		t.Fatal("the only predictor must never sleep")
	}
}

// Property: after arbitrary update sequences, awake weights are a
// probability distribution and sleep spans stay ≥ 1.
func TestQuickEnsembleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewEnsemble([]int{2, 4, 8}, []int{8, 16}, arFactory, EnsembleConfig{})
		if err != nil {
			return false
		}
		for step := 0; step < 40; step++ {
			var preds []CellPrediction
			for _, c := range e.Cells() {
				if c.Sleeping() {
					continue
				}
				preds = append(preds, CellPrediction{
					Cell: c,
					Pred: Prediction{Mean: rng.NormFloat64() * 5, Variance: 0.05 + rng.Float64()},
				})
			}
			e.Update(preds, rng.NormFloat64())
			var sum float64
			awake := 0
			for _, c := range e.Cells() {
				if c.SleepSpan() < 1 {
					return false
				}
				if !c.Sleeping() {
					awake++
					if c.Weight() < 0 {
						return false
					}
					sum += c.Weight()
				}
			}
			if awake == 0 {
				return false
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleStateRoundTrip(t *testing.T) {
	e := newTestEnsemble(t, EnsembleConfig{})
	cells := e.Cells()
	// Drive some asymmetry and a sleeping cell.
	for i := 0; i < 6; i++ {
		var preds []CellPrediction
		for j, c := range cells {
			if c.Sleeping() {
				continue
			}
			mean := 1.0
			if j == 2 {
				mean = 40
			}
			preds = append(preds, CellPrediction{Cell: c, Pred: Prediction{Mean: mean, Variance: 0.1}})
		}
		e.Update(preds, 1)
	}
	states := e.ExportState()
	if len(states) != len(cells) {
		t.Fatalf("exported %d states", len(states))
	}
	// Import into a freshly built ensemble: every cell must match.
	e2 := newTestEnsemble(t, EnsembleConfig{})
	if err := e2.ImportState(states); err != nil {
		t.Fatal(err)
	}
	for i, c := range e2.Cells() {
		want := states[i]
		if c.K != want.K || c.D != want.D {
			t.Fatalf("cell %d identity mismatch", i)
		}
		if c.Sleeping() != want.Sleeping || c.SleepSpan() != want.SleepSpan {
			t.Fatalf("cell %d sleep state mismatch", i)
		}
		got := e2.ExportState()[i]
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("cell %d weight %v vs %v", i, got.Weight, want.Weight)
		}
	}
	// Invalid states rejected.
	if err := e2.ImportState([]CellState{{K: 4, D: 16, Weight: -1, SleepSpan: 1}}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if err := e2.ImportState([]CellState{{K: 4, D: 16, Weight: 0.5, SleepSpan: 0}}); err == nil {
		t.Fatal("zero sleep span should fail")
	}
	// Unknown (k,d) entries are ignored without error.
	if err := e2.ImportState([]CellState{{K: 999, D: 999, Weight: 0.5, SleepSpan: 1}}); err != nil {
		t.Fatal(err)
	}
}
