// Package metrics implements the paper's two evaluation measures
// (Section 6.3.1): mean absolute error (MAE) over point predictions
// and mean negative log predictive density (MNLPD) over probabilistic
// predictions, plus streaming accumulators used by the experiment
// harness to aggregate per-horizon results across sensors and steps.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when a metric is evaluated over no samples.
var ErrEmpty = errors.New("metrics: no samples")

// ErrLength is returned on mismatched slice lengths.
var ErrLength = errors.New("metrics: length mismatch")

// MAE returns the mean absolute error between predictions and truths.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// NLPD returns the negative log density of truth under N(mean, variance).
func NLPD(mean, variance, truth float64) (float64, error) {
	if variance <= 0 {
		return 0, fmt.Errorf("metrics: non-positive variance %v", variance)
	}
	d := truth - mean
	return 0.5*math.Log(2*math.Pi*variance) + d*d/(2*variance), nil
}

// MNLPD returns the mean negative log predictive density of the truths
// under the per-sample Gaussian predictions.
func MNLPD(means, variances, truth []float64) (float64, error) {
	if len(means) != len(truth) || len(variances) != len(truth) {
		return 0, fmt.Errorf("%w: %d/%d/%d", ErrLength, len(means), len(variances), len(truth))
	}
	if len(truth) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range truth {
		v, err := NLPD(means[i], variances[i], truth[i])
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(truth)), nil
}

// z95 is the two-sided 95% Gaussian quantile used for the coverage
// statistic.
const z95 = 1.959963984540054

// Accumulator aggregates absolute errors, negative log predictive
// densities and 95%-interval coverage online; the experiment harness
// keeps one per (method, dataset, horizon) triple.
type Accumulator struct {
	n        int
	absErr   float64
	nlpd     float64
	hasProb  bool
	probOnly int // samples that contributed NLPD
	covered  int // samples whose truth fell inside the 95% interval
}

// Add records a point prediction against the truth.
func (a *Accumulator) Add(mean, truth float64) {
	a.n++
	a.absErr += math.Abs(mean - truth)
}

// AddProb records a probabilistic prediction against the truth; it
// contributes to both MAE and MNLPD. Non-positive variances are
// rejected.
func (a *Accumulator) AddProb(mean, variance, truth float64) error {
	v, err := NLPD(mean, variance, truth)
	if err != nil {
		return err
	}
	a.n++
	a.absErr += math.Abs(mean - truth)
	a.nlpd += v
	a.probOnly++
	a.hasProb = true
	if math.Abs(truth-mean) <= z95*math.Sqrt(variance) {
		a.covered++
	}
	return nil
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// MAE returns the mean absolute error so far.
func (a *Accumulator) MAE() (float64, error) {
	if a.n == 0 {
		return 0, ErrEmpty
	}
	return a.absErr / float64(a.n), nil
}

// MNLPD returns the mean negative log predictive density so far; it
// errors if no probabilistic samples were recorded.
func (a *Accumulator) MNLPD() (float64, error) {
	if !a.hasProb {
		return 0, ErrEmpty
	}
	return a.nlpd / float64(a.probOnly), nil
}

// Coverage95 returns the fraction of probabilistic samples whose truth
// fell inside the central 95% interval of the prediction. A
// well-calibrated forecaster scores ≈0.95; lower means overconfident
// intervals, higher means wastefully wide ones.
func (a *Accumulator) Coverage95() (float64, error) {
	if !a.hasProb {
		return 0, ErrEmpty
	}
	return float64(a.covered) / float64(a.probOnly), nil
}

// Merge folds another accumulator into a.
func (a *Accumulator) Merge(b Accumulator) {
	a.n += b.n
	a.absErr += b.absErr
	a.nlpd += b.nlpd
	a.probOnly += b.probOnly
	a.hasProb = a.hasProb || b.hasProb
	a.covered += b.covered
}
