#!/usr/bin/env bash
# bench_json.sh — run the prediction-path benchmarks and emit
# BENCH_predict.json with ns/op, allocs and every custom metric
# (predict-step-ns/op, cell-fit-ns/op, search-ns/op, ...). No
# dependencies beyond go and awk; CI and `make bench-json` call this.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_predict.json}"
BENCHTIME="${BENCHTIME:-1x}"
# 1x is the CI smoke setting; local runs use BENCHTIME=2s for stable
# numbers.

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/core -run '^$' -bench 'Benchmark(Predict|PredictSequential|PredictSharedHyper|PredictMulti|Observe)$' \
    -benchmem -benchtime "$BENCHTIME" >>"$raw"
go test ./internal/ingest -run '^$' -bench 'BenchmarkIngestThroughput/direct' \
    -benchmem -benchtime "$BENCHTIME" >>"$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    out = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i
        unit = $(i + 1)
        key = unit
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "_", key)
        out = out sprintf(", \"%s\": %s", key, val)
    }
    out = out "}"
    lines[n++] = out
}
END {
    print "{"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$raw" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
