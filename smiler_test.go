package smiler

import (
	"math"
	"math/rand"
	"testing"
)

// noisySeasonal builds a raw-unit (non-normalized) periodic signal.
func noisySeasonal(rng *rand.Rand, n int, scale, offset float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = offset + scale*(math.Sin(2*math.Pi*float64(i)/48)+
			0.3*math.Sin(2*math.Pi*float64(i)/12)) + rng.NormFloat64()*scale*0.03
	}
	return out
}

// smallConfig keeps tests fast: AR predictor, small windows.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = PredictorAR
	return cfg
}

func TestPredictorKindString(t *testing.T) {
	if PredictorGP.String() != "GP" || PredictorAR.String() != "AR" {
		t.Fatal("names wrong")
	}
	if PredictorKind(7).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Device.SMs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("bad device config should fail")
	}
	bad = DefaultConfig()
	bad.ELV = nil
	if _, err := New(bad); err == nil {
		t.Fatal("empty ELV should fail")
	}
	bad = DefaultConfig()
	bad.EKV = nil
	if _, err := New(bad); err == nil {
		t.Fatal("empty EKV should fail")
	}
	bad = DefaultConfig()
	bad.DisableEnsemble = true
	bad.FixedD = 0
	if _, err := New(bad); err == nil {
		t.Fatal("ensemble-disabled without FixedD should fail")
	}
}

func TestAddPredictObserveRoundTrip(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(1))
	all := noisySeasonal(rng, 700, 12, 100) // raw units, not normalized
	warm := 600
	if err := sys.AddSensor("s1", all[:warm]); err != nil {
		t.Fatal(err)
	}
	if got := sys.Sensors(); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("Sensors = %v", got)
	}
	if used, total := sys.DeviceUsage(); used <= 0 || used > total {
		t.Fatalf("device usage %d/%d", used, total)
	}

	var mae, naive float64
	for i := warm; i < len(all); i++ {
		f, err := sys.Predict("s1", 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Horizon != 1 || f.Variance <= 0 {
			t.Fatalf("forecast %+v malformed", f)
		}
		mae += math.Abs(f.Mean - all[i])
		naive += math.Abs(all[i-1] - all[i])
		if err := sys.Observe("s1", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	if mae >= naive {
		t.Fatalf("MAE %v should beat persistence %v", mae/100, naive/100)
	}
	// Forecasts must be in raw units (offset ≈ 100), proving the
	// normalizer round trip.
	f, err := sys.Predict("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean < 50 || f.Mean > 150 {
		t.Fatalf("forecast %v not in raw units", f.Mean)
	}
	lo, hi := f.Interval(1.96)
	if lo >= f.Mean || hi <= f.Mean || f.StdDev() <= 0 {
		t.Fatal("interval malformed")
	}
}

func TestSensorLifecycleErrors(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(2))
	hist := noisySeasonal(rng, 400, 1, 0)
	if err := sys.AddSensor("a", hist); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSensor("a", hist); err == nil {
		t.Fatal("duplicate sensor should fail")
	}
	if err := sys.AddSensor("short", hist[:10]); err == nil {
		t.Fatal("short history should fail")
	}
	if _, err := sys.Predict("nope", 1); err == nil {
		t.Fatal("unknown sensor should fail")
	}
	if err := sys.Observe("nope", 1); err == nil {
		t.Fatal("unknown sensor should fail")
	}
	if err := sys.RemoveSensor("nope"); err == nil {
		t.Fatal("unknown sensor should fail")
	}
	if err := sys.RemoveSensor("a"); err != nil {
		t.Fatal(err)
	}
	if used, _ := sys.DeviceUsage(); used != 0 {
		t.Fatalf("device memory leaked after removal: %d", used)
	}
	if sys.MinHistory() <= 0 {
		t.Fatal("MinHistory must be positive")
	}
}

func TestPredictAllParallel(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(3))
	obs := make(map[string]float64)
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		series := noisySeasonal(rng, 400, float64(i+1), float64(10*i))
		if err := sys.AddSensor(id, series[:399]); err != nil {
			t.Fatal(err)
		}
		obs[id] = series[399]
	}
	fs, err := sys.PredictAll(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 {
		t.Fatalf("got %d forecasts", len(fs))
	}
	for id, f := range fs {
		if f.Variance <= 0 {
			t.Fatalf("sensor %s: bad forecast %+v", id, f)
		}
	}
	if err := sys.ObserveAll(obs); err != nil {
		t.Fatal(err)
	}
	if err := sys.ObserveAll(map[string]float64{"nope": 1}); err == nil {
		t.Fatal("unknown sensor in ObserveAll should fail")
	}
}

func TestAblationConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	hist := noisySeasonal(rng, 400, 1, 0)

	ne := smallConfig()
	ne.DisableEnsemble = true
	ne.FixedK = 8
	ne.FixedD = 24
	sys, err := New(ne)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
	w, err := sys.EnsembleWeights("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 {
		t.Fatalf("NE ablation should have exactly 1 cell, got %d", len(w))
	}
	if math.Abs(w[[2]int{8, 24}]-1) > 1e-9 {
		t.Fatalf("single cell weight %v, want 1", w[[2]int{8, 24}])
	}

	ns := smallConfig()
	ns.DisableAdaptation = true
	ns.DisableSleep = true
	sys2, err := New(ns)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if err := sys2.AddSensor("s", hist[:399]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Observe("s", hist[399]); err != nil {
		t.Fatal(err)
	}
	w2, err := sys2.EnsembleWeights("s")
	if err != nil {
		t.Fatal(err)
	}
	uniform := 1.0 / float64(len(w2))
	for kd, v := range w2 {
		if math.Abs(v-uniform) > 1e-9 {
			t.Fatalf("NS ablation weight %v for %v should stay uniform %v", v, kd, uniform)
		}
	}
}

func TestCloseIdempotentAndGuards(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if used, _ := sys.DeviceUsage(); used != 0 {
		t.Fatal("close must free device memory")
	}
	if err := sys.AddSensor("t", noisySeasonal(rng, 400, 1, 0)); err == nil {
		t.Fatal("AddSensor after Close should fail")
	}
	if _, err := sys.Predict("s", 1); err == nil {
		t.Fatal("Predict after Close should fail")
	}
}

func TestGPPredictorEndToEnd(t *testing.T) {
	cfg := smallConfig()
	cfg.Predictor = PredictorGP
	cfg.EKV = []int{6}
	cfg.ELV = []int{16, 24}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(6))
	all := noisySeasonal(rng, 420, 7, 50)
	if err := sys.AddSensor("s", all[:400]); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := 400; i < 420; i++ {
		f, err := sys.Predict("s", 1)
		if err != nil {
			t.Fatal(err)
		}
		mae += math.Abs(f.Mean - all[i])
		if err := sys.Observe("s", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	mae /= 20
	if mae > 2.0 { // raw scale is 7·[−1.3,1.3]+50
		t.Fatalf("GP end-to-end MAE %v too high", mae)
	}
}

func TestObserveMissingReadingImputes(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(7))
	all := noisySeasonal(rng, 430, 5, 50)
	if err := sys.AddSensor("s", all[:400]); err != nil {
		t.Fatal(err)
	}
	// Predict, then lose the reading: the pending update must be
	// dropped, the gap imputed, and the stream must keep working.
	if _, err := sys.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Observe("s", math.NaN()); err != nil {
		t.Fatal(err)
	}
	for i := 401; i < 420; i++ {
		f, err := sys.Predict("s", 1)
		if err != nil {
			t.Fatal(err)
		}
		if !(f.Variance > 0) || math.IsNaN(f.Mean) {
			t.Fatalf("forecast corrupted after imputation: %+v", f)
		}
		if err := sys.Observe("s", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The imputed value must be a plausible in-range reading, so later
	// forecasts stay in raw units.
	f, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean < 30 || f.Mean > 70 {
		t.Fatalf("forecast %v left the signal range after imputation", f.Mean)
	}
}

func TestPredictHorizonsMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	hist := noisySeasonal(rng, 400, 4, 20)
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	hs := []int{1, 3, 6}
	multi, err := a.PredictHorizons("s", hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(hs) {
		t.Fatalf("got %d forecasts", len(multi))
	}
	for _, h := range hs {
		single, err := b.Predict("s", h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(multi[h].Mean-single.Mean) > 1e-9 {
			t.Fatalf("h=%d: mean %v vs %v", h, multi[h].Mean, single.Mean)
		}
		if multi[h].Horizon != h {
			t.Fatalf("h=%d: horizon field %d", h, multi[h].Horizon)
		}
	}
	if _, err := a.PredictHorizons("nope", hs); err == nil {
		t.Fatal("unknown sensor should fail")
	}
	if _, err := a.PredictHorizons("s", nil); err == nil {
		t.Fatal("empty horizons should fail")
	}
}
