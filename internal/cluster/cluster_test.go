package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"smiler"
	"smiler/internal/server"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// TestClusterForwarding: any node accepts any request; misrouted
// requests reach the owner and responses carry ownership hints.
func TestClusterForwarding(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "fwd-sensor"
	hist := seasonal(rand.New(rand.NewSource(1)), 420)

	owner := ownerOf(t, nodes, sensor)
	entry := nonOwnerOf(t, nodes, sensor)

	// Register through a non-owner: the request must land on the owner.
	cl, err := server.NewClient(entry.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	if !owner.sys.HasSensor(sensor) {
		t.Fatal("registration did not reach the owner")
	}

	// Observe through the non-owner; the value must apply on the owner.
	if err := cl.Observe(sensor, hist[400]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)
	if got, _ := owner.sys.HistoryLen(sensor); got != 401 {
		t.Fatalf("owner history = %d, want 401", got)
	}

	// Forecast through the non-owner equals the owner's own answer.
	viaEntry, err := cl.Forecast(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	ownerCl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaOwner, err := ownerCl.Forecast(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if viaEntry.Mean != viaOwner.Mean || viaEntry.Variance != viaOwner.Variance {
		t.Fatalf("forwarded forecast %+v != owner forecast %+v", viaEntry, viaOwner)
	}
	if viaEntry.Degraded {
		t.Fatalf("healthy-owner forecast must not be degraded: %+v", viaEntry)
	}

	// The response must carry ownership hints for ring-aware clients.
	resp, err := http.Get(entry.ts.URL + "/sensors/" + sensor + "/forecast?h=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(server.OwnerURLHeader); got != owner.ts.URL {
		t.Fatalf("owner URL hint = %q, want %q", got, owner.ts.URL)
	}
}

// TestClusterReplication: the owner streams applied mutations to its
// follower, which converges to the same history.
func TestClusterReplication(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "repl-sensor"
	hist := seasonal(rand.New(rand.NewSource(2)), 440)

	owner := ownerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}

	// Find the follower: the replica target is the next preference
	// entry after the owner.
	var route struct {
		Preference []string `json:"preference"`
	}
	getJSON(t, owner.ts.URL+"/cluster/ring?sensor="+sensor, &route)
	follower := byID(t, nodes, route.Preference[1])

	waitFor(t, 5*time.Second, "registration to replicate", func() bool {
		return follower.sys.HasSensor(sensor)
	})
	if err := cl.ObserveBatch(sensor, hist[400:420]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)
	waitFor(t, 5*time.Second, "observations to replicate", func() bool {
		got, _ := follower.sys.HistoryLen(sensor)
		return got == 420
	})

	// The follower's state is the owner's state: same forecast.
	want, err := owner.sys.Predict(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.sys.Predict(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.Mean != got.Mean || want.Variance != got.Variance {
		t.Fatalf("follower forecast %+v != owner forecast %+v", got, want)
	}
}

// TestClusterGapResync: frames lost in transit (here: seeded by a
// follower restartlike seq reset via direct observation loss) heal
// through the snapshot path. We simulate a gap by removing the sensor
// on the follower; the next frame is then unanswerable and must
// trigger a resync that restores the full state.
func TestClusterGapResync(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "gap-sensor"
	hist := seasonal(rand.New(rand.NewSource(3)), 440)

	owner := ownerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	var route struct {
		Preference []string `json:"preference"`
	}
	getJSON(t, owner.ts.URL+"/cluster/ring?sensor="+sensor, &route)
	follower := byID(t, nodes, route.Preference[1])
	waitFor(t, 5*time.Second, "registration to replicate", func() bool {
		return follower.sys.HasSensor(sensor)
	})

	// Blow away the follower's copy out-of-band: the next replicated
	// observation cannot apply and must force a snapshot resync.
	if err := follower.sys.RemoveSensor(sensor); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveBatch(sensor, hist[400:410]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)
	waitFor(t, 5*time.Second, "snapshot resync to restore the follower", func() bool {
		got, _ := follower.sys.HistoryLen(sensor)
		return got == 410
	})
}

// TestClusterIdempotentRetryThroughForwarding: the same keyed mutation
// sent twice through a non-owner applies exactly once on the owner —
// the forwarder propagates the key and the owner's idempotency layer
// dedupes.
func TestClusterIdempotentRetryThroughForwarding(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "idem-sensor"
	hist := seasonal(rand.New(rand.NewSource(4)), 420)

	owner := ownerOf(t, nodes, sensor)
	entry := nonOwnerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}

	send := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost,
			entry.ts.URL+"/sensors/"+sensor+"/observe",
			strings.NewReader(`{"value": 51.25}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.IdempotencyKeyHeader, "retry-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	first := send()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first observe: HTTP %d", first.StatusCode)
	}
	second := send()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("retried observe: HTTP %d", second.StatusCode)
	}
	if second.Header.Get(server.IdempotentReplayHeader) != "1" {
		t.Fatal("retry must be served from the idempotency cache")
	}
	drainAll(t, nodes)
	if got, _ := owner.sys.HistoryLen(sensor); got != 401 {
		t.Fatalf("owner history = %d, want 401 (duplicate must not double-apply)", got)
	}
}

// TestClusterBulkPartitioning: one bulk POST spanning sensors owned by
// different nodes is split, forwarded, and merged with the caller's
// original indices.
func TestClusterBulkPartitioning(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	rng := rand.New(rand.NewSource(5))

	// Find two sensors with different owners.
	sensors := []string{}
	owners := map[string]*testNode{}
	for i := 0; len(sensors) < 2 && i < 100; i++ {
		id := fmt.Sprintf("bulk-%d", i)
		own := ownerOf(t, nodes, id)
		if len(sensors) == 0 || owners[sensors[0]] != own {
			sensors = append(sensors, id)
			owners[id] = own
		}
	}
	if len(sensors) < 2 {
		t.Fatal("could not find sensors with distinct owners")
	}
	entry := nodes[0]
	for _, s := range sensors {
		cl, err := server.NewClient(entry.ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.AddSensor(s, seasonal(rng, 400)); err != nil {
			t.Fatal(err)
		}
	}

	body := `{"observations":[` +
		`{"id":"` + sensors[0] + `","value":50.5},` +
		`{"id":"` + sensors[1] + `","value":49.5},` +
		`{"id":"unknown-sensor","value":1}]}`
	resp, err := http.Post(entry.ts.URL+"/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Accepted int `json:"accepted"`
		Failed   []struct {
			Index int    `json:"index"`
			ID    string `json:"id"`
		} `json:"failed"`
	}
	if err := jsonDecode(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 {
		t.Fatalf("accepted = %d, want 2", res.Accepted)
	}
	if len(res.Failed) != 1 || res.Failed[0].Index != 2 || res.Failed[0].ID != "unknown-sensor" {
		t.Fatalf("failed = %+v, want the unknown sensor at original index 2", res.Failed)
	}
	drainAll(t, nodes)
	for _, s := range sensors {
		if got, _ := owners[s].sys.HistoryLen(s); got != 401 {
			t.Fatalf("sensor %s history on its owner = %d, want 401", s, got)
		}
	}
}

// TestClusterMigration: migrating a sensor moves ownership and the
// post-migration forecast is bit-identical to a single-node system
// fed the same data — the snapshot + cutover loses nothing.
func TestClusterMigration(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "mig-sensor"
	hist := seasonal(rand.New(rand.NewSource(6)), 440)

	// Reference: a standalone system fed the identical sequence.
	ref, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	for _, v := range hist[400:420] {
		if err := ref.Observe(sensor, v); err != nil {
			t.Fatal(err)
		}
	}

	owner := ownerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveBatch(sensor, hist[400:420]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)

	// Pick a migration target that is not the owner.
	target := nonOwnerOf(t, nodes, sensor)
	resp, err := http.Post(owner.ts.URL+"/cluster/migrate", "application/json",
		strings.NewReader(`{"sensor":"`+sensor+`","target":"`+target.id+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("migrate: HTTP %d: %s", resp.StatusCode, b)
	}

	// Ownership moved everywhere.
	for _, tn := range nodes {
		var route struct {
			Owner string `json:"owner"`
		}
		getJSON(t, tn.ts.URL+"/cluster/ring?sensor="+sensor, &route)
		if route.Owner != target.id {
			t.Fatalf("node %s still routes %s to %s, want %s", tn.id, sensor, route.Owner, target.id)
		}
	}
	if got, _ := target.sys.HistoryLen(sensor); got != 420 {
		t.Fatalf("target history = %d, want 420", got)
	}

	// The migrated forecast — served through any entry node, computed on
	// the target — must be bit-identical to the reference system's.
	want, err := ref.Predict(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Forecast(sensor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Variance != want.Variance {
		t.Fatalf("post-migration forecast (%.17g, %.17g) != reference (%.17g, %.17g)",
			got.Mean, got.Variance, want.Mean, want.Variance)
	}
	if got.Degraded {
		t.Fatalf("post-migration forecast must not be degraded: %+v", got)
	}

	// New observations now apply on the target.
	if err := cl.Observe(sensor, hist[420]); err != nil {
		t.Fatal(err)
	}
	drainAll(t, nodes)
	if got, _ := target.sys.HistoryLen(sensor); got != 421 {
		t.Fatalf("post-migration observe landed wrong: target history = %d, want 421", got)
	}
}

// TestClusterTieredReplication runs the cluster harness with
// hot-sensor tiering enabled on every node: with a cap below the
// sensor count, registration and replication spill sensors cold, and
// forecasts — faulting cold sensors back in on owner and follower —
// stay bit-identical to a standalone untiered reference.
func TestClusterTieredReplication(t *testing.T) {
	tieredCfg := testConfig()
	tieredCfg.MaxHotSensors = 2
	nodes := newTestClusterSys(t, 3, tieredCfg, nil)

	ref, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const sensors = 8
	rng := rand.New(rand.NewSource(12))
	cl, err := server.NewClient(nodes[0].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	hists := make(map[string][]float64, sensors)
	for i := 0; i < sensors; i++ {
		id := fmt.Sprintf("tier-%d", i)
		hists[id] = seasonal(rng, 420)
		if err := cl.AddSensor(id, hists[id][:400]); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddSensor(id, hists[id][:400]); err != nil {
			t.Fatal(err)
		}
	}
	for id, h := range hists {
		if err := cl.ObserveBatch(id, h[400:420]); err != nil {
			t.Fatal(err)
		}
		for _, v := range h[400:420] {
			if err := ref.Observe(id, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	drainAll(t, nodes)

	// Somewhere in the cluster the cap must have been hit.
	churned := false
	for _, tn := range nodes {
		if st := tn.sys.Tiering(); st.Evictions > 0 {
			churned = true
		}
	}
	if !churned {
		t.Fatal("8 sensors across 3 nodes at cap 2 must evict somewhere")
	}

	// Forecasts through the cluster (forwarded to the owner, faulting
	// cold sensors in) match the untiered reference bit for bit.
	for id := range hists {
		want, err := ref.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Forecast(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != want.Mean || got.Variance != want.Variance {
			t.Fatalf("%s: tiered cluster forecast (%v, %v) != reference (%v, %v)",
				id, got.Mean, got.Variance, want.Mean, want.Variance)
		}
	}
}
