package main

import (
	"math"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"smiler"
)

func smallCfg() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func TestLoadOrNewFreshAndMissingFile(t *testing.T) {
	sys, err := loadOrNew(smallCfg(), "")
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys, err = loadOrNew(smallCfg(), filepath.Join(t.TempDir(), "missing.gob"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
}

func TestSaveAndReloadCheckpoint(t *testing.T) {
	cfg := smallCfg()
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 300)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := sys.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := saveCheckpoint(sys, path); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file should be renamed away")
	}

	restored, err := loadOrNew(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if ids := restored.Sensors(); len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("restored sensors = %v", ids)
	}
	if _, err := restored.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrNewCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrNew(smallCfg(), path); err == nil {
		t.Fatal("corrupt checkpoint should fail")
	}
}

func TestRunRejectsBadPredictor(t *testing.T) {
	if err := run(":0", "nope", 1, 0, "", 0); err == nil {
		t.Fatal("unknown predictor should fail")
	}
}

// TestRunLifecycle drives the real server loop: start, then SIGTERM,
// then assert a clean shutdown with a written checkpoint.
func TestRunLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("signal-driven lifecycle test")
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "ar", 1, 100, path, time.Minute)
	}()
	// Give ListenAndServe and signal.Notify time to arm before the
	// termination signal arrives (otherwise it would kill the test
	// binary itself).
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
}
