package baselines

import (
	"fmt"
	"math"
)

// fallbackWindow bounds how much history the stateless fallback
// forecasts look at: enough to estimate a mean, a lag-1 correlation
// and a residual variance, small enough to be O(1) relative to a long
// sensor history.
const fallbackWindow = 256

// PersistenceFallback is a stateless persistence forecast computed
// directly from a history slice: the last value, with a random-walk
// variance h·σ̂² estimated from the recent one-step increments. The
// serving system uses it as the graceful-degradation answer when the
// full semi-lazy pipeline fails or misses its deadline — no model
// state is required, only the history that already survived.
func PersistenceFallback(history []float64, h int) (Prediction, error) {
	if len(history) == 0 {
		return Prediction{}, ErrNotTrained
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	w := window(history)
	var ss float64
	var n int
	for i := 1; i < len(w); i++ {
		d := w[i] - w[i-1]
		ss += d * d
		n++
	}
	v := varFloor
	if n > 0 {
		v = ss / float64(n) * float64(h)
		if v < varFloor {
			v = varFloor
		}
	}
	return Prediction{Mean: history[len(history)-1], Variance: v}, nil
}

// AR1Fallback is a stateless AR(1) forecast computed directly from a
// history slice: a lag-1 autoregression ŷ(t+h) = μ + φ^h·(y(t) − μ)
// fitted on the recent window, with the textbook h-step variance
// σ̂²·Σ φ^{2j}. Slightly smarter than persistence on mean-reverting
// sensors, still O(window) with no model state.
func AR1Fallback(history []float64, h int) (Prediction, error) {
	if len(history) == 0 {
		return Prediction{}, ErrNotTrained
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	w := window(history)
	if len(w) < 3 {
		return PersistenceFallback(history, h)
	}
	var mean float64
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	var num, den float64
	for i := 1; i < len(w); i++ {
		num += (w[i] - mean) * (w[i-1] - mean)
		den += (w[i-1] - mean) * (w[i-1] - mean)
	}
	if den <= 0 {
		return PersistenceFallback(history, h)
	}
	phi := num / den
	// Clamp away the unit root so the h-step variance stays finite.
	if phi > 0.999 {
		phi = 0.999
	} else if phi < -0.999 {
		phi = -0.999
	}
	var ss float64
	for i := 1; i < len(w); i++ {
		r := (w[i] - mean) - phi*(w[i-1]-mean)
		ss += r * r
	}
	sigma2 := ss / float64(len(w)-1)
	phiH := math.Pow(phi, float64(h))
	last := history[len(history)-1]
	variance := varFloor
	if sigma2 > 0 {
		// Σ_{j=0}^{h-1} φ^{2j} = (1 − φ^{2h}) / (1 − φ²).
		variance = sigma2 * (1 - phiH*phiH) / (1 - phi*phi)
		if variance < varFloor {
			variance = varFloor
		}
	}
	return Prediction{Mean: mean + phiH*(last-mean), Variance: variance}, nil
}

// window returns the trailing fallbackWindow points of history.
func window(history []float64) []float64 {
	if len(history) > fallbackWindow {
		return history[len(history)-fallbackWindow:]
	}
	return history
}
