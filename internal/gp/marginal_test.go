package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestMarginalLikelihoodKnownValue(t *testing.T) {
	// One point, pure noise covariance: C = θ₀²+θ₂² = 2,
	// logZ = −½·y²/2 − ½·log 2 − ½·log 2π.
	m, err := Fit([][]float64{{0}}, []float64{1}, Hyper{Signal: 1, Length: 1, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := -0.5*0.5 - 0.5*math.Log(2) - 0.5*math.Log(2*math.Pi)
	if got := m.MarginalLikelihood(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logZ = %v, want %v", got, want)
	}
}

// The analytic ML gradient must match central finite differences.
func TestMLGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeData(rng, 12, 2, 0.15)
	hp := Hyper{Signal: 0.9, Length: 1.1, Noise: 0.25}
	scr := newEvalScratch(len(y))
	defer scr.release()
	_, grad, err := mlValueGrad(directSet(x, y), hp, scr)
	if err != nil {
		t.Fatal(err)
	}
	psi := toLog(hp)
	const eps = 1e-5
	for p := 0; p < 3; p++ {
		up, dn := psi, psi
		up[p] += eps
		dn[p] -= eps
		fu, _, err := mlValueGrad(directSet(x, y), up.hyper(), scr)
		if err != nil {
			t.Fatal(err)
		}
		fd, _, err := mlValueGrad(directSet(x, y), dn.hyper(), scr)
		if err != nil {
			t.Fatal(err)
		}
		num := (fu - fd) / (2 * eps)
		if math.Abs(num-grad[p]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d: analytic %v vs numeric %v", p, grad[p], num)
		}
	}
}

func TestOptimizeMLImprovesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := makeData(rng, 24, 2, 0.1)
	init := Hyper{Signal: 0.3, Length: 3, Noise: 0.5}
	m0, err := Fit(x, y, init)
	if err != nil {
		t.Fatal(err)
	}
	before := m0.MarginalLikelihood()
	res, err := OptimizeML(x, y, init, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.LOO <= before {
		t.Fatalf("ML optimization did not improve: %v -> %v", before, res.LOO)
	}
	if err := res.Hyper.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeML(x, y, Hyper{}, 5); err == nil {
		t.Fatal("invalid init should fail")
	}
	if _, err := OptimizeML(x, y, init, -1); err == nil {
		t.Fatal("negative maxIter should fail")
	}
}

// TestMLvsLOO: both objectives, optimized from the same seed on clean
// data, should land on hyperparameters that predict comparably well —
// the Sundararajan–Keerthi comparison in miniature.
func TestMLvsLOO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeData(rng, 30, 2, 0.1)
	probeX, probeY := makeData(rng, 20, 2, 0.1)
	init := HeuristicHyper(x, y)

	evalMAE := func(hp Hyper) float64 {
		m, err := Fit(x, y, hp)
		if err != nil {
			t.Fatal(err)
		}
		var mae float64
		for i := range probeX {
			mean, _, err := m.Predict(probeX[i])
			if err != nil {
				t.Fatal(err)
			}
			mae += math.Abs(mean - probeY[i])
		}
		return mae / float64(len(probeX))
	}

	loo, err := Optimize(x, y, init, 20)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := OptimizeML(x, y, init, 20)
	if err != nil {
		t.Fatal(err)
	}
	mLOO, mML := evalMAE(loo.Hyper), evalMAE(ml.Hyper)
	// Both should be in the same ballpark on well-specified data
	// (within 2× of each other), and both should beat the raw seed.
	seed := evalMAE(init)
	if mLOO > 2*mML && mML > 2*mLOO {
		t.Fatalf("objectives diverged wildly: LOO %v vs ML %v", mLOO, mML)
	}
	if mLOO > seed*1.5 || mML > seed*1.5 {
		t.Fatalf("optimization should not hurt: seed %v, LOO %v, ML %v", seed, mLOO, mML)
	}
}

func TestPosteriorSampleMomentsMatchPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := makeData(rng, 20, 1, 0.1)
	m, err := Fit(x, y, Hyper{Signal: 1, Length: 1, Noise: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{0.3}, {5.0}}
	const draws = 6000
	sums := make([]float64, len(probe))
	sqs := make([]float64, len(probe))
	for i := 0; i < draws; i++ {
		s, err := m.PosteriorSample(probe, rng.NormFloat64)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range s {
			sums[j] += v
			sqs[j] += v * v
		}
	}
	for j, p := range probe {
		wantMean, wantVar, err := m.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		gotMean := sums[j] / draws
		gotVar := sqs[j]/draws - gotMean*gotMean
		if math.Abs(gotMean-wantMean) > 0.08 {
			t.Fatalf("probe %d: sample mean %v vs predictive %v", j, gotMean, wantMean)
		}
		if math.Abs(gotVar-wantVar) > 0.15*wantVar+0.03 {
			t.Fatalf("probe %d: sample var %v vs predictive %v", j, gotVar, wantVar)
		}
	}
}

func TestPosteriorSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := makeData(rng, 8, 2, 0.1)
	m, err := Fit(x, y, Hyper{Signal: 1, Length: 1, Noise: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PosteriorSample(nil, rng.NormFloat64); err == nil {
		t.Fatal("empty inputs should fail")
	}
	if _, err := m.PosteriorSample([][]float64{{1}}, rng.NormFloat64); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if _, err := m.PosteriorSample([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("nil normal source should fail")
	}
}
