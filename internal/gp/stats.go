package gp

import "sync/atomic"

// Package-level instrumentation counters, bridged into the serving
// system's metrics registry at scrape time (smiler.System registers
// lazy collectors over SnapshotStats). Package atomics — not
// per-model state — because GP fitting is the innermost hot loop: one
// model per ensemble cell per prediction, where threading a registry
// handle through every constructor would cost more than it tells.
var (
	statFits          atomic.Uint64
	statJitterRetries atomic.Uint64
	statOptimizeEvals atomic.Uint64
	statColumns       atomic.Uint64
	statPrefixReuses  atomic.Uint64
)

// Stats is a point-in-time snapshot of the package counters.
type Stats struct {
	// Fits counts GP conditioning runs (covariance build + Cholesky).
	Fits uint64
	// JitterRetries counts Cholesky attempts that failed and walked one
	// step up the jitter ladder — a numerical-health signal: a rising
	// rate means ill-conditioned kNN training sets.
	JitterRetries uint64
	// OptimizeEvals counts objective/gradient evaluations spent in
	// hyperparameter optimization (each is one Fit plus a gradient).
	OptimizeEvals uint64
	// Columns counts shared per-column Gram-base constructions (one per
	// ensemble column per Prediction Step on the shared path).
	Columns uint64
	// PrefixReuses counts cell conditionings served by reusing the
	// leading principal block of a shared Cholesky factor instead of a
	// fresh factorization (SharedHyper mode).
	PrefixReuses uint64
}

// SnapshotStats reads the package counters.
func SnapshotStats() Stats {
	return Stats{
		Fits:          statFits.Load(),
		JitterRetries: statJitterRetries.Load(),
		OptimizeEvals: statOptimizeEvals.Load(),
		Columns:       statColumns.Load(),
		PrefixReuses:  statPrefixReuses.Load(),
	}
}
