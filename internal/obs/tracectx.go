package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
	"sync/atomic"
)

// TraceHeader is the HTTP header carrying the distributed trace
// context between cluster nodes: "<32 hex chars>;hop=<n>".
const TraceHeader = "X-Smiler-Trace"

// SpanSummaryHeader is the response header a downstream node uses to
// return a compact summary of the spans it recorded while serving a
// forwarded request, so the entry node can inline them into its own
// hop trace (see EncodeSpans).
const SpanSummaryHeader = "X-Smiler-Spans"

// TraceContext identifies one hop of a distributed trace: a 128-bit
// trace id shared by every node the request touches, the hop depth
// (0 at the entry node, +1 per forward), and the local node handling
// this hop. Node is node-local bookkeeping and is not propagated.
type TraceContext struct {
	ID   string
	Hop  int
	Node string
}

// Valid reports whether the context carries a trace id.
func (tc TraceContext) Valid() bool { return tc.ID != "" }

// HeaderValue formats the context for the TraceHeader.
func (tc TraceContext) HeaderValue() string {
	return tc.ID + ";hop=" + strconv.Itoa(tc.Hop)
}

// Next returns the context the next hop should carry.
func (tc TraceContext) Next() TraceContext {
	return TraceContext{ID: tc.ID, Hop: tc.Hop + 1}
}

// ParseTraceContext parses a TraceHeader value ("id" or "id;hop=n").
// The id must be 32 hex characters; anything else is rejected so a
// hostile or corrupt header cannot inject arbitrary strings into
// traces and logs.
func ParseTraceContext(v string) (TraceContext, bool) {
	id, rest, _ := strings.Cut(v, ";")
	if len(id) != 32 {
		return TraceContext{}, false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return TraceContext{}, false
		}
	}
	tc := TraceContext{ID: id}
	if rest != "" {
		h, ok := strings.CutPrefix(rest, "hop=")
		if !ok {
			return TraceContext{}, false
		}
		n, err := strconv.Atoi(h)
		if err != nil || n < 0 || n > 64 {
			return TraceContext{}, false
		}
		tc.Hop = n
	}
	return tc, true
}

// traceSeed is 8 bytes of boot randomness; combined with a process
// counter it yields unique 128-bit ids without a per-request
// crypto/rand read on the request hot path.
var traceSeed = func() [8]byte {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return b
}()

var traceCtr atomic.Uint64

// NewTraceID mints a 128-bit trace id as 32 lowercase hex characters.
func NewTraceID() string {
	var b [16]byte
	copy(b[:8], traceSeed[:])
	binary.BigEndian.PutUint64(b[8:], traceCtr.Add(1))
	return hex.EncodeToString(b[:])
}

type traceCtxKey struct{}

// ContextWithTrace attaches the trace context to ctx.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context attached by
// ContextWithTrace, reporting whether one was present.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// maxSummarySpans bounds the span-summary response header — traces of
// a multi-horizon prediction can carry one fit span per ensemble cell,
// and response headers should stay small.
const maxSummarySpans = 32

// EncodeSpans renders spans for the SpanSummaryHeader:
// "name:offset_s:duration_s" triples joined by commas, details
// dropped. At most maxSummarySpans spans are encoded.
func EncodeSpans(spans []Span) string {
	if len(spans) > maxSummarySpans {
		spans = spans[:maxSummarySpans]
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strings.Map(spanNameSafe, sp.Name))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(sp.OffsetS, 'g', 6, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(sp.Duration, 'g', 6, 64))
	}
	return b.String()
}

// spanNameSafe keeps span names header- and format-safe.
func spanNameSafe(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		return r
	default:
		return '_'
	}
}

// DecodeSpans parses an EncodeSpans value back into spans. Malformed
// entries are skipped — the header crosses a network boundary.
func DecodeSpans(s string) []Span {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]Span, 0, len(parts))
	for _, p := range parts {
		fields := strings.SplitN(p, ":", 3)
		if len(fields) != 3 || fields[0] == "" {
			continue
		}
		off, err1 := strconv.ParseFloat(fields[1], 64)
		dur, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, Span{Name: fields[0], OffsetS: off, Duration: dur})
	}
	return out
}
