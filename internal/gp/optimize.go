package gp

import (
	"fmt"
	"math"

	"smiler/internal/mat"
)

// Optimization works on ψ = log Θ so positivity is automatic; ψ is
// clamped to keep the covariance numerically sane for z-normalized
// data.
const (
	logLo = -9.2 // θ ≥ ~1e-4
	logHi = 6.9  // θ ≤ ~1e3
)

// OptimizeResult reports the outcome of hyperparameter optimization.
type OptimizeResult struct {
	Hyper Hyper   // optimized hyperparameters
	LOO   float64 // leave-one-out log likelihood at Hyper
	Evals int     // objective/gradient evaluations spent
}

type logHyper [3]float64 // log θ₀, log θ₁, log θ₂

func toLog(h Hyper) logHyper {
	return logHyper{math.Log(h.Signal), math.Log(h.Length), math.Log(h.Noise)}
}

func (p logHyper) hyper() Hyper {
	return Hyper{Signal: math.Exp(p[0]), Length: math.Exp(p[1]), Noise: math.Exp(p[2])}
}

func (p logHyper) clamp() logHyper {
	for i := range p {
		if p[i] < logLo {
			p[i] = logLo
		}
		if p[i] > logHi {
			p[i] = logHi
		}
	}
	return p
}

// looValueGrad evaluates the LOO log likelihood and its gradient with
// respect to the log hyperparameters, using the closed form of
// [Rasmussen & Williams 2006, Eqn. 5.13] with Z_j = C⁻¹·∂C/∂ψ_j.
func looValueGrad(x [][]float64, y []float64, hp Hyper) (float64, [3]float64, error) {
	var grad [3]float64
	m, err := Fit(x, y, hp)
	if err != nil {
		return 0, grad, err
	}
	ll, err := m.LOO()
	if err != nil {
		return 0, grad, err
	}
	kinv, err := m.kinvMatrix()
	if err != nil {
		return 0, grad, err
	}
	n := len(y)
	alpha := m.alpha

	// Partial derivative matrices of C w.r.t. the log hyperparameters.
	sig2 := hp.Signal * hp.Signal
	len2 := hp.Length * hp.Length
	dSig := mat.NewDense(n, n)   // ∂C/∂log θ₀ = 2·K_SE
	dLen := mat.NewDense(n, n)   // ∂C/∂log θ₁ = K_SE ∘ (r²/θ₁²)
	dNoise := mat.NewDense(n, n) // ∂C/∂log θ₂ = 2θ₂²·I
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r2 := sqDist(x[i], x[j])
			kse := sig2 * math.Exp(-0.5*r2/len2)
			dSig.Set(i, j, 2*kse)
			dSig.Set(j, i, 2*kse)
			dl := kse * r2 / len2
			dLen.Set(i, j, dl)
			dLen.Set(j, i, dl)
		}
		dNoise.Set(i, i, 2*hp.Noise*hp.Noise)
	}

	for pi, dC := range []*mat.Dense{dSig, dLen, dNoise} {
		z, err := mat.Mul(kinv, dC)
		if err != nil {
			return 0, grad, err
		}
		za, err := mat.MulVec(z, alpha)
		if err != nil {
			return 0, grad, err
		}
		var g float64
		for i := 0; i < n; i++ {
			// [Z·C⁻¹]_ii = Σ_k Z_ik · C⁻¹_ki.
			var zkinvII float64
			zrow := z.Row(i)
			for k := 0; k < n; k++ {
				zkinvII += zrow[k] * kinv.At(k, i)
			}
			kii := kinv.At(i, i)
			if kii <= 0 {
				return 0, grad, fmt.Errorf("%w: nonpositive precision diagonal", ErrCondition)
			}
			g += (alpha[i]*za[i] - 0.5*(1+alpha[i]*alpha[i]/kii)*zkinvII) / kii
		}
		grad[pi] = g
	}
	return ll, grad, nil
}

// Optimize maximizes the LOO log likelihood starting from init, using
// Polak–Ribière conjugate gradients with an Armijo backtracking line
// search, for at most maxIter iterations. A failed covariance
// factorization during the search is treated as −∞ (the step is
// rejected). This is the "online training" of Section 5.2.2: with the
// tiny semi-lazy training sets each evaluation is O(k³) with k ≤ 128.
func Optimize(x [][]float64, y []float64, init Hyper, maxIter int) (OptimizeResult, error) {
	if err := init.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if maxIter < 0 {
		return OptimizeResult{}, fmt.Errorf("gp: negative maxIter %d", maxIter)
	}
	res, err := ascend(x, y, init, maxIter, looValueGrad)
	statOptimizeEvals.Add(uint64(res.Evals))
	return res, err
}
