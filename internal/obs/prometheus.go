package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers,
// one sample line per child, histogram children expanded into
// cumulative _bucket series plus _sum and _count. Families appear in
// registration order, children in creation order — stable output for
// humans and golden tests alike.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, len(f.order))
		for i, sig := range f.order {
			children[i] = f.children[sig]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range children {
			writeChild(bw, f, c)
		}
	}
	return bw.Flush()
}

func writeChild(bw *bufio.Writer, f *family, c *child) {
	switch {
	case c.fn != nil:
		writeSample(bw, f.name, "", c.labels, nil, c.fn())
	case c.counter != nil:
		writeSample(bw, f.name, "", c.labels, nil, float64(c.counter.Value()))
	case c.gauge != nil:
		writeSample(bw, f.name, "", c.labels, nil, c.gauge.Value())
	case c.hist != nil:
		h := c.hist
		counts := h.snapshot()
		var cum uint64
		for i, cnt := range counts {
			cum += cnt
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			writeSample(bw, f.name, "_bucket", c.labels, &Label{Name: "le", Value: le}, float64(cum))
		}
		writeSample(bw, f.name, "_sum", c.labels, nil, h.Sum())
		writeSample(bw, f.name, "_count", c.labels, nil, float64(h.Count()))
	}
}

// writeSample emits one exposition line: name[suffix]{labels[,extra]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, extra *Label, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extra != nil {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeLabel(bw, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			writeLabel(bw, *extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func writeLabel(bw *bufio.Writer, l Label) {
	bw.WriteString(l.Name)
	bw.WriteString(`="`)
	bw.WriteString(escapeLabel(l.Value))
	bw.WriteByte('"')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
