package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Event severities. Severity is a plain string so callers can extend
// the set, but everything the system emits uses one of these three.
const (
	SevInfo  = "info"
	SevWarn  = "warn"
	SevError = "error"
)

// Event is one structured flight-recorder entry: an operationally
// interesting state transition (failover, migration cutover, WAL
// reset/replay, recovered panic, degraded prediction, peer up/down,
// checkpoint) stamped with a sequence number, wall time, the node that
// recorded it and — when the triggering request carried one — the
// distributed trace id, so a post-mortem can line events up against
// traces across nodes.
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Type     string    `json:"type"`
	Severity string    `json:"severity"`
	Node     string    `json:"node,omitempty"`
	Sensor   string    `json:"sensor,omitempty"`
	TraceID  string    `json:"trace_id,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// DefaultEventCapacity is the flight-recorder ring size.
const DefaultEventCapacity = 512

// EventRing is a bounded lock-free ring of Events — the black-box
// flight recorder. Writers claim a slot with one atomic add and
// publish an immutable *Event with one atomic store; readers load slot
// pointers without locks, so a snapshot is never blocked by (and never
// blocks) recording. Old events are overwritten once the ring wraps.
// A nil *EventRing accepts the full API as a no-op, matching the rest
// of the obs instruments.
type EventRing struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
	node  atomic.Pointer[string]
	reg   *Registry
}

// NewEventRing builds a ring holding the last capacity events
// (capacity <= 0 takes DefaultEventCapacity). reg, when non-nil,
// receives a smiler_events_total{type,severity} count per recorded
// event.
func NewEventRing(capacity int, reg *Registry) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventRing{slots: make([]atomic.Pointer[Event], capacity), reg: reg}
}

// SetNode sets the node id stamped onto subsequently recorded events
// (the cluster layer learns its identity after the system is built).
func (r *EventRing) SetNode(node string) {
	if r == nil {
		return
	}
	r.node.Store(&node)
}

// Record stamps sequence number, time and node onto ev (severity
// defaults to info) and publishes it. Returns the assigned sequence
// number (0 on a nil ring).
func (r *EventRing) Record(ev Event) uint64 {
	if r == nil {
		return 0
	}
	if ev.Severity == "" {
		ev.Severity = SevInfo
	}
	if ev.Node == "" {
		if n := r.node.Load(); n != nil {
			ev.Node = *n
		}
	}
	ev.Time = time.Now()
	ev.Seq = r.seq.Add(1)
	e := ev
	r.slots[(ev.Seq-1)%uint64(len(r.slots))].Store(&e)
	r.reg.Counter("smiler_events_total",
		"Flight-recorder events by type and severity.",
		L("type", ev.Type), L("severity", ev.Severity)).Inc()
	return ev.Seq
}

// LastSeq returns the sequence number of the most recently recorded
// event — the ring's high-water mark (0 when empty or nil).
func (r *EventRing) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Since returns the retained events with Seq > after, oldest first.
// When max > 0 and more events qualify, the newest max are returned
// (the older ones are on their way out of the ring anyway). The
// snapshot is taken without locks: events recorded concurrently may or
// may not appear, exactly like a Prometheus scrape.
func (r *EventRing) Since(after uint64, max int) []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil && e.Seq > after {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// WriteTo dumps the retained events as text, oldest first — the
// post-mortem path wired to SIGTERM and panic handlers, so it must not
// allocate proportionally to anything but the ring size and must never
// block on a lock.
func (r *EventRing) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range r.Since(0, 0) {
		line := fmt.Sprintf("%s [%s] %s", e.Time.Format(time.RFC3339Nano), e.Severity, e.Type)
		if e.Node != "" {
			line += " node=" + e.Node
		}
		if e.Sensor != "" {
			line += " sensor=" + e.Sensor
		}
		if e.TraceID != "" {
			line += " trace=" + e.TraceID
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		m, err := fmt.Fprintln(w, line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
