package smiler

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"smiler/internal/core"
	"smiler/internal/fault"
)

// degradeConfig is a small GP configuration (GP cells expose the
// gp.fit fault seam) with a persistence fallback.
func degradeConfig() Config {
	cfg := smallConfig()
	cfg.Predictor = PredictorGP
	cfg.EKV = []int{4}
	cfg.ELV = []int{16}
	cfg.Fallback = FallbackPersistence
	return cfg
}

func degradeSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	rng := rand.New(rand.NewSource(11))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 5, 20)); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDegradedOnInjectedGPError(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	in := fault.NewInjector(1)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindError, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	f, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatalf("fallback should have answered, got error %v", err)
	}
	if !f.Degraded || f.DegradedReason != "error" {
		t.Fatalf("forecast = %+v, want Degraded with reason \"error\"", f)
	}
	if f.Variance <= 0 {
		t.Fatalf("degraded variance %v must be positive", f.Variance)
	}

	// Recovery: disarm and the full pipeline answers again.
	fault.Disarm()
	f, err = sys.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degraded {
		t.Fatal("pipeline recovered but forecast still degraded")
	}
}

func TestDegradedOnInjectedPanic(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	in := fault.NewInjector(2)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindPanic, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	f, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatalf("panic should have been recovered into a fallback, got %v", err)
	}
	if !f.Degraded || f.DegradedReason != "panic" {
		t.Fatalf("forecast = %+v, want Degraded with reason \"panic\"", f)
	}
}

func TestPanicSurfacesAsErrorWithoutFallback(t *testing.T) {
	cfg := degradeConfig()
	cfg.Fallback = FallbackNone
	sys := degradeSystem(t, cfg)
	in := fault.NewInjector(3)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindPanic, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	_, err := sys.Predict("s", 1)
	if !errors.Is(err, core.ErrPanicked) {
		t.Fatalf("err = %v, want core.ErrPanicked", err)
	}
}

func TestDegradedOnDeadline(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	f, err := sys.PredictCtx(ctx, "s", 1)
	if err != nil {
		t.Fatalf("expired deadline should degrade, got error %v", err)
	}
	if !f.Degraded || f.DegradedReason != "deadline" {
		t.Fatalf("forecast = %+v, want Degraded with reason \"deadline\"", f)
	}
}

func TestConfigPredictDeadline(t *testing.T) {
	cfg := degradeConfig()
	cfg.PredictDeadline = time.Nanosecond
	sys := degradeSystem(t, cfg)
	f, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatalf("implicit deadline should degrade, got error %v", err)
	}
	if !f.Degraded || f.DegradedReason != "deadline" {
		t.Fatalf("forecast = %+v, want Degraded with reason \"deadline\"", f)
	}
}

func TestDegradedHorizons(t *testing.T) {
	cfg := degradeConfig()
	cfg.Fallback = FallbackAR1
	sys := degradeSystem(t, cfg)
	in := fault.NewInjector(4)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindError, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	hs := []int{1, 2, 3}
	out, err := sys.PredictHorizons("s", hs)
	if err != nil {
		t.Fatalf("fallback should have answered, got %v", err)
	}
	for _, h := range hs {
		f, ok := out[h]
		if !ok {
			t.Fatalf("missing horizon %d", h)
		}
		if !f.Degraded || f.DegradedReason != "error" || f.Horizon != h {
			t.Fatalf("h=%d forecast = %+v, want degraded with reason \"error\"", h, f)
		}
	}
}

func TestValidationErrorsNeverDegrade(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	if _, err := sys.Predict("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown sensor") {
		t.Fatalf("unknown sensor must error, got %v", err)
	}
	if _, err := sys.Predict("s", 0); err == nil {
		t.Fatal("h=0 must error even with fallback configured")
	}
	if _, err := sys.PredictHorizons("s", nil); err == nil {
		t.Fatal("empty horizon list must error even with fallback configured")
	}
}

func TestDegradedMetrics(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	in := fault.NewInjector(5)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindPanic, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)
	if _, err := sys.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sys.Metrics().WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, `smiler_degraded_predictions_total{reason="panic"} 1`) {
		t.Fatalf("missing degraded counter in exposition:\n%s", text)
	}
	if !strings.Contains(text, "smiler_panics_recovered_total 1") {
		t.Fatalf("missing panics-recovered counter in exposition:\n%s", text)
	}
}

// TestInjectedGPUSimLaunchFault drives the second fault seam: a launch
// failure inside the simulated GPU fails the search step, and the
// fallback still answers.
func TestInjectedGPUSimLaunchFault(t *testing.T) {
	sys := degradeSystem(t, degradeConfig())
	in := fault.NewInjector(6)
	in.Set(fault.PointGPUSimLaunch, fault.Rule{Kind: fault.KindError, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	f, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatalf("fallback should have answered a launch fault, got %v", err)
	}
	if !f.Degraded {
		t.Fatalf("forecast = %+v, want degraded", f)
	}
}
