// Durability wiring for smiler-server: WAL recovery at startup, the
// journal hooks that keep the WAL ahead of applied state, and the WAL
// metrics. See docs/ROBUSTNESS.md for the failure model.
package main

import (
	"fmt"
	"log/slog"
	"runtime"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/obs"
	"smiler/internal/wal"
)

// walShards resolves the shard count requested for a fresh WAL
// directory: the ingestion pipeline's configured worker count (its own
// default is GOMAXPROCS). A directory that already holds logs pins its
// own count in a meta file, which OpenManager reuses regardless of
// this value — sensor→shard placement must not move while records for
// the old placement remain on disk. The pipeline is then sized from
// Manager.Shards() so placement agrees end to end.
func walShards(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// walOptions maps the -fsync / -fsync-interval flags onto wal.Options.
func walOptions(o options) (wal.Options, error) {
	policy, err := wal.ParseSyncPolicy(o.fsync)
	if err != nil {
		return wal.Options{}, err
	}
	return wal.Options{Policy: policy, Interval: o.fsyncInterval}, nil
}

// recoverWAL replays every intact record under dir into the system,
// stopping cleanly per shard at the first torn or corrupt record.
// cover is the checkpoint's embedded WAL position (per-shard next
// sequence number at checkpoint save): records below it are already in
// the checkpoint and are skipped, so a crash between a checkpoint save
// and the WAL reset it covers never double-applies observations.
// Replay application is additionally idempotent-tolerant: a record
// that no longer applies (re-adding a sensor the checkpoint already
// holds, removing one it never saw) is counted and skipped, not fatal
// — the remaining defense for checkpoints written before the cover
// field existed.
func recoverWAL(sys *smiler.System, dir string, cover map[int]uint64, logger *slog.Logger) (wal.ReplayStats, error) {
	applied, skipped, covered := 0, 0, 0
	known := make(map[string]bool)
	for _, id := range sys.Sensors() {
		known[id] = true
	}
	st, err := wal.ReplayDir(dir, func(shard int, seq uint64, r wal.Record) error {
		if seq < cover[shard] {
			covered++
			return nil
		}
		var aerr error
		switch r.Type {
		case wal.RecAddSensor:
			if known[r.Sensor] {
				skipped++
				return nil
			}
			if aerr = sys.AddSensor(r.Sensor, r.History); aerr == nil {
				known[r.Sensor] = true
			}
		case wal.RecObserve:
			if !known[r.Sensor] {
				skipped++
				return nil
			}
			aerr = sys.Observe(r.Sensor, r.Value)
		case wal.RecRemoveSensor:
			if !known[r.Sensor] {
				skipped++
				return nil
			}
			if aerr = sys.RemoveSensor(r.Sensor); aerr == nil {
				delete(known, r.Sensor)
			}
		default:
			skipped++
			return nil
		}
		if aerr != nil {
			skipped++
			logger.Warn("wal replay: record skipped",
				"shard", shard, "seq", seq, "type", r.Type.String(), "err", aerr)
			return nil
		}
		applied++
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("replaying WAL %s: %w", dir, err)
	}
	if st.Records > 0 || st.Torn {
		logger.Info("wal replayed",
			"records", st.Records, "applied", applied, "covered", covered,
			"skipped", skipped, "segments", st.Segments, "torn", st.Torn)
		sev := obs.SevInfo
		if st.Torn {
			sev = obs.SevWarn
		}
		sys.Events().Record(obs.Event{
			Type: "wal_replay", Severity: sev,
			Detail: fmt.Sprintf("records=%d applied=%d covered=%d skipped=%d torn=%v",
				st.Records, applied, covered, skipped, st.Torn),
		})
	}
	return st, nil
}

// staleCover reports a checkpoint cover that cannot belong to the open
// WAL: a shard index outside the log's range or a covered sequence
// number ahead of the shard's next append. That happens only when the
// WAL directory was cleared (or replaced) after the checkpoint was
// saved; the checkpoint must then be rewritten with a fresh cover or
// replay would wrongly skip new records landing on the reused low
// sequence numbers.
func staleCover(cover map[int]uint64, mgr *wal.Manager) bool {
	next := mgr.NextSeqs()
	for shard, seq := range cover {
		n, ok := next[shard]
		if !ok || seq > n {
			return true
		}
	}
	return false
}

// openDurability performs the full recovery sequence and returns the
// live WAL manager:
//
//  1. replay the existing WAL into the (checkpoint-restored) system,
//     skipping records the checkpoint's cover already contains;
//  2. open the sharded manager for appending (repairing torn tails and
//     positioning sequence numbers after the last intact record);
//  3. if a checkpoint path is configured and anything was replayed (or
//     the on-disk cover is stale), write a post-recovery checkpoint
//     embedding the manager's current positions as its cover, then
//     reset the logs — sequence numbers are preserved, so a crash at
//     any point in this window replays nothing twice.
//
// Without a checkpoint the replayed logs are kept: the WAL is then the
// only durable copy, and new appends extend it under the shard count
// pinned in the directory's meta file.
func openDurability(sys *smiler.System, cover map[int]uint64, o options, logger *slog.Logger) (*wal.Manager, error) {
	opts, err := walOptions(o)
	if err != nil {
		return nil, err
	}
	st, err := recoverWAL(sys, o.walDir, cover, logger)
	if err != nil {
		return nil, err
	}
	mgr, err := wal.OpenManager(o.walDir, walShards(o.shards), opts, ingest.ShardIndex)
	if err != nil {
		return nil, fmt.Errorf("opening WAL %s: %w", o.walDir, err)
	}
	if o.checkpoint != "" && (st.Records > 0 || st.Torn || staleCover(cover, mgr)) {
		if err := saveCheckpoint(sys, o.checkpoint, mgr.NextSeqs()); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("post-recovery checkpoint: %w", err)
		}
		sys.Events().Record(obs.Event{Type: "checkpoint", Detail: "post-recovery, " + o.checkpoint})
		if err := mgr.Reset(); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("truncating recovered WAL: %w", err)
		}
		sys.Events().Record(obs.Event{Type: "wal_reset", Detail: "recovered WAL truncated, " + o.walDir})
		logger.Info("post-recovery checkpoint saved", "path", o.checkpoint)
	}
	logger.Info("wal open",
		"dir", o.walDir, "shards", mgr.Shards(), "fsync", opts.Policy.String())
	return mgr, nil
}

// registerWALMetrics exposes the manager's counters on /metrics.
func registerWALMetrics(reg *obs.Registry, mgr *wal.Manager) {
	reg.CounterFunc("smiler_wal_appends_total",
		"Records appended to the write-ahead log.",
		func() float64 { return float64(mgr.Stats().Appends) })
	reg.CounterFunc("smiler_wal_syncs_total",
		"Explicit fsyncs of write-ahead-log segments.",
		func() float64 { return float64(mgr.Stats().Syncs) })
	reg.CounterFunc("smiler_wal_bytes_total",
		"Bytes appended to the write-ahead log.",
		func() float64 { return float64(mgr.Stats().Bytes) })
	reg.CounterFunc("smiler_wal_rotations_total",
		"Write-ahead-log segment rotations.",
		func() float64 { return float64(mgr.Stats().Rotations) })
}

// shutdownDurability runs the clean-exit tail after the pipeline has
// drained: sync the WAL, write the final checkpoint with the WAL
// positions embedded as its cover, and reset the logs it covers. The
// reset preserves sequence numbers, so a crash between the checkpoint
// save and the reset leaves records the next start recognizes as
// covered and skips — never a double apply.
func shutdownDurability(sys *smiler.System, mgr *wal.Manager, o options, logger *slog.Logger) error {
	if mgr != nil {
		if err := mgr.Sync(); err != nil {
			return fmt.Errorf("syncing WAL: %w", err)
		}
	}
	if o.checkpoint != "" {
		var cover map[int]uint64
		if mgr != nil {
			cover = mgr.NextSeqs()
		}
		if err := saveCheckpoint(sys, o.checkpoint, cover); err != nil {
			return fmt.Errorf("saving checkpoint: %w", err)
		}
		sys.Events().Record(obs.Event{Type: "checkpoint", Detail: "shutdown, " + o.checkpoint})
		logger.Info("checkpoint saved", "path", o.checkpoint)
		if mgr != nil {
			if err := mgr.Reset(); err != nil {
				return fmt.Errorf("resetting WAL: %w", err)
			}
			sys.Events().Record(obs.Event{Type: "wal_reset", Detail: "covered by shutdown checkpoint"})
		}
	}
	if mgr != nil {
		if err := mgr.Close(); err != nil {
			return fmt.Errorf("closing WAL: %w", err)
		}
	}
	return nil
}
