package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"smiler/internal/index"
	"smiler/internal/obs"
)

// PipelineConfig configures a per-sensor pipeline.
type PipelineConfig struct {
	// EKV is the Ensemble kNN Vector (paper default {8,16,32}).
	EKV []int
	// Index holds the search parameters; its ELV is the Ensemble
	// Length Vector.
	Index index.Params
	// Horizon is the default look-ahead h used by the continuous loop.
	Horizon int
	// Factory builds one predictor per ensemble cell; nil means the
	// paper's GP predictor.
	Factory PredictorFactory
	// Ensemble tunes the auto-tuning mechanism (ablations).
	Ensemble EnsembleConfig
}

// DefaultPipelineConfig returns the paper's defaults (Table 2): the
// 3×3 ensemble EKV={8,16,32} × ELV={32,64,96}, ρ=8, ω=16, h=1, GP
// predictors.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		EKV:     []int{8, 16, 32},
		Index:   index.DefaultParams(),
		Horizon: 1,
		Factory: func() Predictor { return NewGP() },
	}
}

// pendingUpdate remembers the per-cell predictions made for a future
// time step so the self-adaptive reweighting can run once the truth
// arrives.
type pendingUpdate struct {
	target int // history index the prediction refers to
	preds  []CellPrediction
}

// Pipeline is the per-sensor SMiLer engine: the Search Step (Suffix
// kNN Search on the index) feeding the Prediction Step (the ensemble
// of semi-lazy predictors), with the adaptive auto-tuning loop closed
// by Observe.
type Pipeline struct {
	ix        *index.Index
	ens       *Ensemble
	cfg       PipelineConfig
	pending   []pendingUpdate
	timing    PhaseTiming
	obsTiming ObserveTiming
}

// PhaseTiming reports where the last Predict call spent its time.
// SearchSec vs PredictSec is the two-way split Fig. 12 plots; the
// remaining fields break each side down further so the serving
// system's per-phase latency histograms see every stage of a
// prediction: the group-level lower-bound pass and the DTW
// verification inside the Search Step, and the per-cell model fits
// plus the ensemble mix inside the Prediction Step.
type PhaseTiming struct {
	// SearchSec is the whole Search Step (kNN retrieval).
	SearchSec float64
	// LowerBoundSec is the group-level LBen pass within the search
	// (wall clock; the threshold seeding and k-selection make up the
	// difference to SearchSec).
	LowerBoundSec float64
	// VerifySec is the exact banded-DTW verification within the search.
	VerifySec float64
	// PredictSec is the whole Prediction Step (model construction,
	// evaluation and mixing).
	PredictSec float64
	// CellFitSec is the time spent fitting and evaluating the awake
	// ensemble cells' predictors (GP training dominates here).
	CellFitSec float64
	// MixSec is the ensemble mixing time.
	MixSec float64
}

// ObserveTiming reports where the last Observe call spent its time:
// the self-adaptive reweighting of matured predictions vs the
// incremental index advance.
type ObserveTiming struct {
	ReweightSec float64
	AdvanceSec  float64
}

// NewPipeline builds a pipeline over an existing index. The index's
// ELV is the ensemble's length vector.
func NewPipeline(ix *index.Index, cfg PipelineConfig) (*Pipeline, error) {
	if ix == nil {
		return nil, errors.New("core: nil index")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: horizon %d must be positive", cfg.Horizon)
	}
	if len(cfg.EKV) == 0 {
		return nil, errors.New("core: empty EKV")
	}
	factory := cfg.Factory
	if factory == nil {
		factory = func() Predictor { return NewGP() }
	}
	ens, err := NewEnsemble(cfg.EKV, ix.Params().ELV, factory, cfg.Ensemble)
	if err != nil {
		return nil, err
	}
	return &Pipeline{ix: ix, ens: ens, cfg: cfg}, nil
}

// Index returns the underlying SMiLer index.
func (p *Pipeline) Index() *index.Index { return p.ix }

// Ensemble returns the ensemble (for inspection and tests).
func (p *Pipeline) Ensemble() *Ensemble { return p.ens }

// Predict runs one Search Step + Prediction Step for horizon h and
// returns the mixed posterior. The per-cell predictions are queued so
// that when the observation for the predicted time step arrives via
// Observe, the ensemble weights adapt.
func (p *Pipeline) Predict(h int) (Prediction, error) {
	return p.PredictTraced(h, nil)
}

// PredictTraced is Predict with per-phase tracing: when tr is
// non-nil, one span is recorded for the index search (with nested
// lower-bound and verify spans from the index's own wall clocks), one
// per awake ensemble cell's model fit, and one for the mix, plus the
// search's kNN effectiveness stats. A nil trace costs nothing.
func (p *Pipeline) PredictTraced(h int, tr *obs.Trace) (Prediction, error) {
	if h <= 0 {
		return Prediction{}, fmt.Errorf("core: horizon %d must be positive", h)
	}
	p.timing = PhaseTiming{}
	searchStart := time.Now()
	results, err := p.ix.Search(p.ens.MaxK(), h)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: search step failed: %w", err)
	}
	p.timing.SearchSec = time.Since(searchStart).Seconds()
	p.recordSearch(tr, searchStart)
	predictStart := time.Now()
	byD := make(map[int]index.ItemResult, len(results))
	for _, r := range results {
		byD[r.D] = r
	}

	n := p.ix.Len()
	preds, err := p.cellPredictions(byD, h, n, tr)
	if err != nil {
		return Prediction{}, err
	}
	mixed, err := p.mixTimed(preds, tr)
	if err != nil {
		return Prediction{}, err
	}
	p.timing.PredictSec = time.Since(predictStart).Seconds()
	p.pending = append(p.pending, pendingUpdate{target: n - 1 + h, preds: preds})
	return mixed, nil
}

// recordSearch folds the search phase into the trace and the timing
// struct: the span covering the whole Search Step plus the index's
// wall-clock split of lower-bound production vs DTW verification and
// its kNN effectiveness counters.
func (p *Pipeline) recordSearch(tr *obs.Trace, searchStart time.Time) {
	st := p.ix.Stats()
	p.timing.LowerBoundSec = st.LowerBoundWallSeconds
	p.timing.VerifySec = st.VerifyWallSeconds
	if tr == nil {
		return
	}
	searchDur := time.Duration(p.timing.SearchSec * float64(time.Second))
	base := searchStart
	tr.AddSpan("search", "", sinceTraceStart(tr, base), searchDur)
	lbDur := time.Duration(st.LowerBoundWallSeconds * float64(time.Second))
	tr.AddSpan("lower_bound", "", sinceTraceStart(tr, base), lbDur)
	tr.AddSpan("verify", "", sinceTraceStart(tr, base.Add(lbDur)),
		time.Duration(st.VerifyWallSeconds*float64(time.Second)))
	tr.SetStat("knn_candidates", float64(st.Candidates))
	tr.SetStat("knn_pruned", float64(st.Pruned()))
	tr.SetStat("knn_unfiltered", float64(st.Unfiltered))
	tr.SetStat("gpu_sim_seconds", st.LowerBoundSimSeconds+st.VerifySimSeconds)
}

// sinceTraceStart converts an absolute instant to a trace offset.
func sinceTraceStart(tr *obs.Trace, at time.Time) time.Duration {
	return at.Sub(tr.Start)
}

// mixTimed runs the ensemble mix under a span and the MixSec timer.
func (p *Pipeline) mixTimed(preds []CellPrediction, tr *obs.Trace) (Prediction, error) {
	end := tr.StartSpan("mix", "")
	mixStart := time.Now()
	mixed, err := p.ens.Mix(preds)
	p.timing.MixSec += time.Since(mixStart).Seconds()
	end()
	return mixed, err
}

// Timing reports the phase breakdown of the most recent Predict call.
func (p *Pipeline) Timing() PhaseTiming { return p.timing }

// LastObserveTiming reports the phase breakdown of the most recent
// Observe call.
func (p *Pipeline) LastObserveTiming() ObserveTiming { return p.obsTiming }

// PredictMulti runs one Search Step shared across several horizons
// (the index verifies each candidate segment at most once) and one
// Prediction Step per horizon, returning the mixed posterior for each.
// It is equivalent to calling Predict for every horizon, at a fraction
// of the search cost.
func (p *Pipeline) PredictMulti(hs []int) (map[int]Prediction, error) {
	return p.PredictMultiTraced(hs, nil)
}

// PredictMultiTraced is PredictMulti with per-phase tracing (see
// PredictTraced); the cell-fit spans carry the horizon they belong to.
func (p *Pipeline) PredictMultiTraced(hs []int, tr *obs.Trace) (map[int]Prediction, error) {
	if len(hs) == 0 {
		return nil, errors.New("core: empty horizon list")
	}
	for _, h := range hs {
		if h <= 0 {
			return nil, fmt.Errorf("core: horizon %d must be positive", h)
		}
	}
	p.timing = PhaseTiming{}
	searchStart := time.Now()
	resultsByH, err := p.ix.SearchMulti(p.ens.MaxK(), hs)
	if err != nil {
		return nil, fmt.Errorf("core: search step failed: %w", err)
	}
	p.timing.SearchSec = time.Since(searchStart).Seconds()
	p.recordSearch(tr, searchStart)
	predictStart := time.Now()

	n := p.ix.Len()
	out := make(map[int]Prediction, len(hs))
	for _, h := range hs {
		byD := make(map[int]index.ItemResult, len(resultsByH[h]))
		for _, r := range resultsByH[h] {
			byD[r.D] = r
		}
		preds, err := p.cellPredictions(byD, h, n, tr)
		if err != nil {
			return nil, err
		}
		mixed, err := p.mixTimed(preds, tr)
		if err != nil {
			return nil, err
		}
		out[h] = mixed
		p.pending = append(p.pending, pendingUpdate{target: n - 1 + h, preds: preds})
	}
	p.timing.PredictSec = time.Since(predictStart).Seconds()
	return out, nil
}

// cellPredictions evaluates every awake ensemble cell on its kNN data
// for one horizon, recording one fit span per cell.
func (p *Pipeline) cellPredictions(byD map[int]index.ItemResult, h, n int, tr *obs.Trace) ([]CellPrediction, error) {
	var preds []CellPrediction
	for _, cell := range p.ens.Cells() {
		if cell.Sleeping() {
			continue
		}
		item, ok := byD[cell.D]
		if !ok {
			return nil, fmt.Errorf("core: search returned no results for d=%d", cell.D)
		}
		neighbors := item.Neighbors
		if len(neighbors) > cell.K {
			neighbors = neighbors[:cell.K]
		}
		if len(neighbors) == 0 {
			continue
		}
		x := make([][]float64, len(neighbors))
		y := make([]float64, len(neighbors))
		for i, nb := range neighbors {
			seg := make([]float64, cell.D)
			for j := 0; j < cell.D; j++ {
				seg[j] = p.ix.Value(nb.T + j)
			}
			x[i] = seg
			y[i] = p.ix.Value(nb.T + cell.D - 1 + h)
		}
		x0 := make([]float64, cell.D)
		for j := 0; j < cell.D; j++ {
			x0[j] = p.ix.Value(n - cell.D + j)
		}
		var end func()
		if tr != nil {
			end = tr.StartSpan(strings.ToLower(cell.Pred.Name())+"_fit",
				fmt.Sprintf("k=%d d=%d h=%d", cell.K, cell.D, h))
		}
		fitStart := time.Now()
		pr, err := cell.Pred.Predict(x0, x, y)
		p.timing.CellFitSec += time.Since(fitStart).Seconds()
		if end != nil {
			end()
		}
		if err != nil {
			return nil, fmt.Errorf("core: predictor (k=%d,d=%d) failed: %w", cell.K, cell.D, err)
		}
		preds = append(preds, CellPrediction{Cell: cell, Pred: pr})
	}
	return preds, nil
}

// Observe feeds the next observation into the pipeline: it closes the
// auto-tuning loop for any prediction whose target time step this
// observation is, then advances the index (continuous reuse path).
func (p *Pipeline) Observe(v float64) error {
	t := p.ix.Len() // index the new observation will occupy
	reweightStart := time.Now()
	kept := p.pending[:0]
	for _, pu := range p.pending {
		switch {
		case pu.target == t:
			p.ens.Update(pu.preds, v)
		case pu.target > t:
			kept = append(kept, pu)
		}
		// Targets below t are stale (already matched or skipped).
	}
	p.pending = kept
	advanceStart := time.Now()
	p.obsTiming.ReweightSec = advanceStart.Sub(reweightStart).Seconds()
	err := p.ix.Advance(v)
	p.obsTiming.AdvanceSec = time.Since(advanceStart).Seconds()
	return err
}

// PendingUpdates reports how many predictions still await their truth.
func (p *Pipeline) PendingUpdates() int { return len(p.pending) }

// DropPendingFor discards any queued auto-tuning update whose target
// is the given history index — used when the observation for that step
// will never arrive (missing readings imputed by the system itself
// must not be scored as truth).
func (p *Pipeline) DropPendingFor(target int) {
	kept := p.pending[:0]
	for _, pu := range p.pending {
		if pu.target != target {
			kept = append(kept, pu)
		}
	}
	p.pending = kept
}
