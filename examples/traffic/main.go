// Traffic anomaly watch — the paper's motivating scenario (Example
// 1.1): predict road-occupancy sensors in real time and flag abnormal
// events by checking each arriving observation against the predictive
// distribution. Because the semi-lazy GP provides calibrated
// uncertainty, "abnormal" is a z-score, not a magic threshold.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math"

	"smiler"
	"smiler/internal/datasets"
)

const (
	warmPoints = 1800 // ~12.5 days of 10-minute samples
	liveSteps  = 60
	zAlarm     = 3.0 // flag |truth − mean| > 3σ
)

func main() {
	// Synthetic freeway occupancy sensors (the ROAD corpus).
	series, err := datasets.Generate(datasets.Config{
		Kind: datasets.Road, Sensors: 3, Days: 14, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := smiler.DefaultConfig()
	cfg.Predictor = smiler.PredictorGP // GP wins on dynamic traffic data
	sys, err := smiler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, s := range series {
		if err := sys.AddSensor(s.ID(), s.Values()[:warmPoints]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("watching %d traffic sensors, alarm at %.0fσ\n\n", len(series), zAlarm)

	alarms := 0
	var mae float64
	for t := 0; t < liveSteps; t++ {
		forecasts, err := sys.PredictAll(1)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range series {
			truth := s.At(warmPoints + t)
			// Inject a synthetic incident on sensor 0 two-thirds in.
			if s.ID() == series[0].ID() && t == 2*liveSteps/3 {
				truth = math.Min(1, truth+0.5)
			}
			f := forecasts[s.ID()]
			z := math.Abs(truth-f.Mean) / f.StdDev()
			mae += math.Abs(truth - f.Mean)
			if z > zAlarm {
				alarms++
				fmt.Printf("step %3d  ALARM %-10s occupancy %.3f vs predicted %.3f ± %.3f (z=%.1f)\n",
					t, s.ID(), truth, f.Mean, f.StdDev(), z)
			}
			if err := sys.Observe(s.ID(), truth); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\n%d alarms over %d steps × %d sensors; MAE %.4f\n",
		alarms, liveSteps, len(series), mae/float64(liveSteps*len(series)))
}
