// Package anytime is the quality side of the anytime prediction
// engine: it quantifies how far a progressive (best-so-far) kNN result
// is from the exact answer, and learns a per-sensor model that makes
// progressive search converge faster.
//
// Two ideas from the literature meet here. ProS (Echihabi et al.,
// arXiv 2212.13310) shows that a kNN search which verifies candidates
// in ascending lower-bound order can stop at any point and report the
// probability that its best-so-far set already equals the exact set —
// the estimate below follows the same construction from observed
// "flip" frequencies. Ding et al. (arXiv 2302.03085) show a learned
// layer over window-level summaries tightens admission into the
// expensive verification stage; Model is that layer: a piecewise-linear
// map from a window-level envelope lower bound to the expected true DTW
// distance, trained incrementally from the (lower bound, distance)
// pairs every verification produces anyway.
//
// The package is deliberately free of index/pipeline dependencies so
// every layer (index, core, checkpointing) can share its types.
package anytime

import "math"

// Quality describes how close a progressive kNN result is to the exact
// answer. A completed search reports the zero-risk values (Exact true,
// FracVerified 1, LBGap 0, ProbExact 1).
type Quality struct {
	// Exact is true when the result is provably the exact kNN set:
	// every candidate was verified, or every unverified candidate's
	// lower bound already exceeds the k-th best-so-far distance.
	Exact bool
	// FracVerified is the fraction of filter-surviving candidates whose
	// exact DTW distance was computed before the deadline fired.
	FracVerified float64
	// LBGap is the relative gap between the smallest unverified lower
	// bound and the k-th best-so-far distance, in [0,1]: 0 means the
	// bound already seals the result, 1 means an unverified candidate
	// could still be arbitrarily closer.
	LBGap float64
	// ProbExact is the ProS-style estimate of the probability that the
	// best-so-far set equals the exact set (up to distance ties).
	ProbExact float64
}

// EstimateProbExact is the ProS-style stopping estimate: during
// verification, atRisk counts candidates whose lower bound was below
// the running k-th best distance (so they could have entered the set)
// and flips counts how many actually did. The empirical flip rate,
// Laplace-smoothed so tiny samples stay conservative, gives the
// probability that none of the remaining at-risk candidates would flip
// the set either.
func EstimateProbExact(flips, atRisk, remaining int) float64 {
	if remaining <= 0 {
		return 1
	}
	rate := (float64(flips) + 1) / (float64(atRisk) + 2)
	if rate >= 1 {
		return 0
	}
	return math.Pow(1-rate, float64(remaining))
}

// modelBins is the number of piecewise segments: half-log2 buckets over
// the lower-bound magnitude, covering [0, 2^32) — far beyond any
// normalized-series DTW distance.
const modelBins = 64

// minTrain is the number of observations before Predict departs from
// the identity map. Below it the model orders candidates exactly like
// the raw lower bound, so an untrained model is a no-op.
const minTrain = 64

// binCap caps the per-bin effective sample count: beyond it the bin
// mean becomes an exponential moving average, so the model tracks
// regime changes in the stream instead of freezing on ancient history.
const binCap = 512

// Model is the learned lower-bound layer: a per-sensor piecewise-linear
// map lb ↦ E[dist | lb]. Each half-log2 bucket of the lower-bound axis
// holds the running mean ratio dist/lb observed there, so prediction is
// ratio(bin(lb))·lb — linear in lb within each segment. Since banded
// DTW distance is always ≥ its envelope lower bound, ratios are ≥ 1 and
// the prediction is a tightened admission threshold: candidates whose
// predicted distance exceeds the filter threshold are deferred to the
// latest verification rounds.
//
// The model only influences the ORDER in which candidates are verified,
// never which candidates are verified or with what cutoff — so search
// results are bit-identical with or without it (the exactness ablation
// mirrors DisableEarlyAbandon).
//
// Not safe for concurrent use; each sensor's model is guarded by the
// sensor lock like the index it accompanies.
type Model struct {
	count  [modelBins]float64
	ratio  [modelBins]float64
	global float64 // running mean ratio across all bins
	n      uint64
}

// NewModel returns an empty (identity) model.
func NewModel() *Model { return &Model{} }

func bin(lb float64) int {
	b := int(2 * math.Log2(1+lb))
	if b < 0 {
		b = 0
	}
	if b >= modelBins {
		b = modelBins - 1
	}
	return b
}

// Observe feeds one verified (lower bound, exact distance) pair.
// Non-finite or non-positive inputs are ignored (abandoned candidates
// report +Inf and carry no ratio information).
func (m *Model) Observe(lb, dist float64) {
	if m == nil {
		return
	}
	if !(lb > 1e-12) || math.IsInf(dist, 0) || math.IsNaN(dist) || dist < lb {
		return
	}
	r := dist / lb
	b := bin(lb)
	if m.count[b] < binCap {
		m.count[b]++
	}
	m.ratio[b] += (r - m.ratio[b]) / m.count[b]
	m.n++
	w := float64(m.n)
	if w > binCap {
		w = binCap
	}
	m.global += (r - m.global) / w
}

// Ready reports whether the model has seen enough pairs to order
// candidates better than the raw lower bound.
func (m *Model) Ready() bool { return m != nil && m.n >= minTrain }

// N returns the number of pairs observed.
func (m *Model) N() uint64 {
	if m == nil {
		return 0
	}
	return m.n
}

// Predict maps a lower bound to the expected true DTW distance. An
// untrained model (or an empty bin backed by no global signal) returns
// lb itself, so ordering degrades gracefully to plain lower-bound
// order.
func (m *Model) Predict(lb float64) float64 {
	if !m.Ready() || !(lb > 0) {
		return lb
	}
	b := bin(lb)
	r := m.ratio[b]
	if m.count[b] == 0 {
		r = m.global
	}
	if r < 1 {
		r = 1
	}
	return r * lb
}

// ModelState is the serializable snapshot of a Model, carried inside
// the per-sensor checkpoint envelope so the learned layer survives WAL
// replay, tiering spill, migration and replication. Gob decodes a
// missing field as the zero value, so checkpoints written before this
// layer existed restore with a fresh model.
type ModelState struct {
	Version int
	Counts  []float64
	Ratios  []float64
	Global  float64
	N       uint64
}

// State snapshots the model.
func (m *Model) State() ModelState {
	s := ModelState{
		Version: 1,
		Counts:  make([]float64, modelBins),
		Ratios:  make([]float64, modelBins),
		Global:  m.global,
		N:       m.n,
	}
	copy(s.Counts, m.count[:])
	copy(s.Ratios, m.ratio[:])
	return s
}

// NewModelFromState restores a model from a snapshot. Unknown versions
// or malformed snapshots yield a fresh model rather than an error: the
// learned layer is an accelerator, never a correctness dependency.
func NewModelFromState(s ModelState) *Model {
	m := &Model{}
	if s.Version != 1 || len(s.Counts) != modelBins || len(s.Ratios) != modelBins {
		return m
	}
	copy(m.count[:], s.Counts)
	copy(m.ratio[:], s.Ratios)
	m.global = s.Global
	m.n = s.N
	return m
}
