module smiler

go 1.22
