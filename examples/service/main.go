// Service example — run SMiLer behind the HTTP API: an in-process
// server hosts the prediction system while a typed client registers
// sensors, streams observations and pulls forecasts, exactly as a
// fleet of sensor gateways would over the network.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"

	"smiler"
	"smiler/internal/server"
)

func main() {
	cfg := smiler.DefaultConfig()
	cfg.Predictor = smiler.PredictorAR // keep the demo snappy
	sys, err := smiler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	handler, err := server.New(sys)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	fmt.Println("service listening at", ts.URL)

	client, err := server.NewClient(ts.URL, ts.Client())
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Healthz(); err != nil {
		log.Fatal(err)
	}

	// A gateway registers two sensors with their history.
	rng := rand.New(rand.NewSource(7))
	signal := func(id, t int) float64 {
		return 100*float64(id+1) + 15*math.Sin(2*math.Pi*float64(t)/48) + rng.NormFloat64()
	}
	const warm = 600
	for id := 0; id < 2; id++ {
		hist := make([]float64, warm)
		for t := range hist {
			hist[t] = signal(id, t)
		}
		if err := client.AddSensor(fmt.Sprintf("gateway-%d", id), hist); err != nil {
			log.Fatal(err)
		}
	}
	ids, err := client.Sensors()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered sensors:", ids)

	// Live loop over the API: forecast, then stream the truth.
	for t := 0; t < 5; t++ {
		for id := 0; id < 2; id++ {
			name := fmt.Sprintf("gateway-%d", id)
			f, err := client.Forecast(name, 1)
			if err != nil {
				log.Fatal(err)
			}
			truth := signal(id, warm+t)
			fmt.Printf("step %d %s: forecast %.2f in [%.2f, %.2f], truth %.2f\n",
				t, name, f.Mean, f.Lo, f.Hi, truth)
			if err := client.Observe(name, truth); err != nil {
				log.Fatal(err)
			}
		}
	}

	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsystem: %d sensors, %d/%d device bytes\n",
		st.Sensors, st.DeviceUsed, st.DeviceTotal)
	cells, err := client.Ensemble("gateway-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gateway-0 ensemble weights:")
	for _, c := range cells {
		fmt.Printf("  k=%2d d=%2d -> %.3f\n", c.K, c.D, c.Weight)
	}
}
