# Developer entry points; CI runs the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet test race bench bench-ingest

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-shape benchmarks (Tables 3-4, Figs 7-13).
bench:
	$(GO) test -bench . -run '^$$' ./...

# Ingestion pipeline throughput: direct Observe vs sharded bulk ingest.
bench-ingest:
	$(GO) test ./internal/ingest -bench Throughput -run '^$$'
