#!/usr/bin/env sh
# End-to-end cluster smoke test against three real smiler-server
# processes on loopback ports: register a sensor through a non-owner
# (forwarding), observe and forecast through it, kill the owner, and
# assert a survivor serves the forecast tagged degraded_reason
# "replica" with the failover counters visible on /metrics. Run via
# `make cluster-smoke-procs`; `make cluster-smoke` runs the in-process
# equivalent under the race detector.
set -eu

BIN=$(mktemp -d)/smiler-server
P1=19081
P2=19082
P3=19083
PEERS="n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3"
SENSOR=smoke-hall
OUT=$(mktemp)

go build -o "$BIN" ./cmd/smiler-server

"$BIN" -addr "127.0.0.1:$P1" -node-id n1 -cluster-peers "$PEERS" \
    -probe-interval 100ms -probe-failures 2 -predictor ar -log-level warn &
PID1=$!
"$BIN" -addr "127.0.0.1:$P2" -node-id n2 -cluster-peers "$PEERS" \
    -probe-interval 100ms -probe-failures 2 -predictor ar -log-level warn &
PID2=$!
"$BIN" -addr "127.0.0.1:$P3" -node-id n3 -cluster-peers "$PEERS" \
    -probe-interval 100ms -probe-failures 2 -predictor ar -log-level warn &
PID3=$!
cleanup() {
    kill "$PID1" "$PID2" "$PID3" 2>/dev/null || true
    wait "$PID1" "$PID2" "$PID3" 2>/dev/null || true
    rm -f "$OUT"
}
trap cleanup EXIT INT TERM

for port in "$P1" "$P2" "$P3"; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: node on :$port did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
done

# Who owns the sensor? Ask n1; every node answers identically.
curl -sf "http://127.0.0.1:$P1/cluster/ring?sensor=$SENSOR" >"$OUT"
OWNER=$(sed -n 's/.*"owner":"\([^"]*\)".*/\1/p' "$OUT")
case "$OWNER" in
n1) OWNER_PORT=$P1 OWNER_PID=$PID1 ;;
n2) OWNER_PORT=$P2 OWNER_PID=$PID2 ;;
n3) OWNER_PORT=$P3 OWNER_PID=$PID3 ;;
*)
    echo "cluster-smoke: could not resolve owner from: $(cat "$OUT")" >&2
    exit 1
    ;;
esac
# Pick any other node as the entry point.
if [ "$OWNER_PORT" = "$P1" ]; then ENTRY=$P2; else ENTRY=$P1; fi
echo "cluster-smoke: owner=$OWNER (:$OWNER_PORT), entry=:$ENTRY"

# Register + observe + forecast, all through the non-owner.
HIST=$(awk 'BEGIN{s="";for(i=0;i<400;i++){v=50+10*sin(2*3.14159265*i/48);s=s (i?",":"") v}print s}')
curl -sf -X POST "http://127.0.0.1:$ENTRY/sensors" \
    -H 'Content-Type: application/json' \
    -d "{\"id\":\"$SENSOR\",\"history\":[$HIST]}" >/dev/null
curl -sf -X POST "http://127.0.0.1:$ENTRY/sensors/$SENSOR/observe" \
    -H 'Content-Type: application/json' -d '{"value": 51.5}' >/dev/null
curl -sf "http://127.0.0.1:$ENTRY/sensors/$SENSOR/forecast?h=1" >"$OUT"
if grep -q '"degraded"' "$OUT"; then
    echo "cluster-smoke: healthy-cluster forecast unexpectedly degraded: $(cat "$OUT")" >&2
    exit 1
fi
echo "cluster-smoke: forwarded forecast OK: $(cat "$OUT")"

# Give replication a moment to ship the registration to the follower.
sleep 1

# Kill the owner; within the probe window a survivor must serve the
# forecast from the replica, tagged degraded.
kill "$OWNER_PID" 2>/dev/null || true
wait "$OWNER_PID" 2>/dev/null || true

i=0
while :; do
    if curl -sf "http://127.0.0.1:$ENTRY/sensors/$SENSOR/forecast?h=1" >"$OUT" 2>/dev/null &&
        grep -q '"degraded_reason":"replica"' "$OUT"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "cluster-smoke: no degraded replica forecast after owner death; last: $(cat "$OUT")" >&2
        exit 1
    fi
    sleep 0.2
done
echo "cluster-smoke: replica forecast OK: $(cat "$OUT")"

# The failover is visible on the survivor's /metrics.
curl -sf "http://127.0.0.1:$ENTRY/metrics" >"$OUT"
status=0
for family in \
    smiler_cluster_failovers_total \
    smiler_cluster_promoted_serves_total \
    smiler_cluster_replication_lag_frames \
    smiler_cluster_peer_up \
    ; do
    if ! grep -q "^$family" "$OUT"; then
        echo "cluster-smoke: MISSING metric family $family" >&2
        status=1
    fi
done
if ! grep '^smiler_cluster_failovers_total' "$OUT" | grep -qv ' 0$'; then
    echo "cluster-smoke: failovers counter did not move" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "cluster-smoke: OK"
else
    echo "--- /metrics dump ---" >&2
    cat "$OUT" >&2
fi
exit $status
