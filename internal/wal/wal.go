// Package wal is a per-shard append-only write-ahead log for the
// SMiLer serving system: the durability layer between "the HTTP
// handler accepted an observation" and "the shutdown checkpoint made
// it permanent". tspDB's framing — prediction functionality belongs
// behind database-grade durability — is the design target.
//
// Layout and format. A Log is a directory of segment files named by
// the sequence number of their first record (%020d.wal). Records are
// framed as
//
//	uint32 LE payload length | payload | uint32 LE CRC32C(payload)
//
// so a torn tail (crash mid-write) is detected by a short read or a
// checksum mismatch and recovery stops cleanly at the last intact
// record. Segments rotate at Options.SegmentBytes; a checkpoint that
// covers a sequence number lets TruncateThrough delete every segment
// whose records are all covered.
//
// Fsync policy. SyncAlways fsyncs after every append (no synced
// record is ever lost, slowest), SyncInterval fsyncs at most every
// Options.Interval (bounded loss window), SyncOff leaves syncing to
// the OS (fastest; a machine crash can lose everything since the last
// rotation). Every policy flushes the user-space buffer per append,
// so a process crash (panic) without an OS crash loses nothing.
//
// The fault-injection points fault.PointWALAppend, fault.PointWALSync
// and fault.PointWALRead drive the robustness test harness through
// this package's failure paths.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/fault"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the
	// last sync (checked on append; Close and rotation always sync).
	SyncInterval
	// SyncOff never fsyncs explicitly (rotation and Close still do, so
	// sealed segments are durable).
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spellings onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "per-write":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// Options configures a Log; zero values take defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 16 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval fsync period (default 50ms).
	Interval time.Duration
}

func (o *Options) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
}

// ErrClosed is returned by Append/Sync on a closed log.
var ErrClosed = errors.New("wal: log closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	segSuffix   = ".wal"
	frameHeader = 4 // uint32 payload length
	frameCRC    = 4 // uint32 CRC32C
)

func segName(startSeq uint64) string {
	return fmt.Sprintf("%020d%s", startSeq, segSuffix)
}

// Log is one append-only log directory. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64 // bytes in the active segment
	seq      uint64
	segStart uint64
	lastSync time.Time
	closed   bool

	appends   atomic.Uint64
	syncs     atomic.Uint64
	bytes     atomic.Uint64
	rotations atomic.Uint64

	buf []byte // scratch for frame encoding
}

// Open opens (or creates) the log directory, repairs a torn tail left
// by a crash — the last segment is truncated to its final intact
// record — and positions the log to append after the last record.
func Open(dir string, opts Options) (*Log, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Scan the last segment: count intact records and chop anything
	// after the last one, so appends never land behind garbage.
	last := segs[len(segs)-1]
	records, validEnd, _, err := scanSegment(filepath.Join(dir, segName(last)), nil)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, segName(last))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi.Size() != validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		// Make the repair itself durable: without this fsync a crash
		// shortly after recovery could resurrect the torn bytes behind
		// newly appended frames under SyncInterval/SyncOff.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing repaired tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = validEnd
	l.segStart = last
	l.seq = last + records
	l.lastSync = time.Now()
	return l, nil
}

// listSegments returns the starting sequence numbers of the
// directory's segments, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, start)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// openSegment starts a fresh segment whose first record will have the
// given sequence number.
func (l *Log) openSegment(startSeq uint64) error {
	path := filepath.Join(l.dir, segName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	l.segStart = startSeq
	l.seq = startSeq
	l.lastSync = time.Now()
	return nil
}

// Append encodes and writes one record, returning its sequence number.
// The record is on stable storage when Append returns only under
// SyncAlways; the other policies trade a bounded loss window for
// throughput.
func (l *Log) Append(r Record) (uint64, error) {
	if err := fault.Check(fault.PointWALAppend); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	payload, err := appendPayload(l.buf[:0], r)
	if err != nil {
		return 0, err
	}
	l.buf = payload[:0]
	frameLen := int64(frameHeader + len(payload) + frameCRC)
	if l.size > 0 && l.size+frameLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	var crc [frameCRC]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(crc[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	// Every policy pushes the frame to the OS immediately: a process
	// crash then loses nothing, only a machine crash is at the mercy of
	// the fsync policy.
	if err := l.w.Flush(); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	seq := l.seq
	l.seq++
	l.size += frameLen
	l.appends.Add(1)
	l.bytes.Add(uint64(frameLen))
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment (flush + fsync) and opens the
// next one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.rotations.Add(1)
	return l.openSegment(l.seq)
}

// Sync flushes and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := fault.Check(fault.PointWALSync); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs.Add(1)
	l.lastSync = time.Now()
	return nil
}

// NextSeq returns the sequence number the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// TruncateThrough deletes every sealed segment whose records all have
// sequence numbers below seq — i.e. segments fully covered by a
// checkpoint that captured state through seq-1. The active segment is
// never deleted.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, start := range segs {
		if start == l.segStart {
			break // active segment
		}
		// Segment i spans [start, next start).
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1]
		} else {
			end = l.segStart
		}
		if end > seq {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// Reset atomically discards every record: all segments are deleted and
// a fresh one starts at the current sequence number. Called after a
// checkpoint that covers the whole log.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, start := range segs {
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return l.openSegment(l.seq)
}

// Close seals the log: flush, fsync, close. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.f.Close()
}

// LogStats snapshots one log's counters.
type LogStats struct {
	Appends   uint64 `json:"appends"`
	Syncs     uint64 `json:"syncs"`
	Bytes     uint64 `json:"bytes"`
	Rotations uint64 `json:"rotations"`
	NextSeq   uint64 `json:"next_seq"`
}

// Stats snapshots the log's counters.
func (l *Log) Stats() LogStats {
	return LogStats{
		Appends:   l.appends.Load(),
		Syncs:     l.syncs.Load(),
		Bytes:     l.bytes.Load(),
		Rotations: l.rotations.Load(),
		NextSeq:   l.NextSeq(),
	}
}

// ReplayStats reports what a replay (or segment scan) saw.
type ReplayStats struct {
	// Records is the number of intact records visited.
	Records uint64
	// Segments is the number of segment files visited.
	Segments int
	// Torn reports that replay stopped at a torn or corrupt record
	// (everything before it was applied; everything after ignored).
	Torn bool
	// TornSegment is the path of the segment holding the bad record.
	TornSegment string
}

// Replay visits every intact record of the log directory in append
// order and stops cleanly at the first torn or corrupt record: the
// frame is discarded along with everything after it, exactly the
// records a crashed writer may have half-written. A non-nil error
// from fn aborts the replay and is returned wrapped.
func Replay(dir string, fn func(seq uint64, r Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for _, start := range segs {
		path := filepath.Join(dir, segName(start))
		st.Segments++
		records, _, torn, err := scanSegment(path, func(i uint64, r Record) error {
			return fn(start+i, r)
		})
		st.Records += records
		if err != nil {
			return st, err
		}
		if torn {
			st.Torn = true
			st.TornSegment = path
			return st, nil // later segments are past the tear; ignore them
		}
	}
	return st, nil
}

// scanSegment reads one segment, calling fn (when non-nil) per intact
// record with the record's index within the segment. It returns the
// record count, the byte offset just past the last intact record, and
// whether the segment ends in a torn or corrupt frame. I/O errors (as
// opposed to torn data) and fn errors are returned as err.
func scanSegment(path string, fn func(i uint64, r Record) error) (records uint64, validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	rd := bufio.NewReaderSize(f, 1<<20)
	var off int64
	var hdr [frameHeader]byte
	var crcBuf [frameCRC]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return records, off, false, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, true, nil // torn header
			}
			return records, off, false, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxPayload {
			return records, off, true, nil // corrupt length
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(rd, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, true, nil // torn payload
			}
			return records, off, false, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if _, err := io.ReadFull(rd, crcBuf[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, true, nil // torn checksum
			}
			return records, off, false, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		// The injection point models silent media corruption: flip a
		// byte after the read so the CRC check below must catch it.
		fault.Corrupt(fault.PointWALRead, payload)
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return records, off, true, nil // corrupt frame
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return records, off, true, nil // structurally corrupt
		}
		if fn != nil {
			if err := fn(records, rec); err != nil {
				return records, off, false, fmt.Errorf("wal: replaying %s: %w", path, err)
			}
		}
		records++
		off += frameHeader + int64(n) + frameCRC
	}
}
