package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Fatal("length error expected")
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty error expected")
	}
}

func TestNLPD(t *testing.T) {
	// Standard normal at its mean: NLPD = ½log(2π).
	got, err := NLPD(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5*math.Log(2*math.Pi)) > 1e-12 {
		t.Fatalf("NLPD = %v", got)
	}
	if _, err := NLPD(0, 0, 0); err == nil {
		t.Fatal("variance 0 should fail")
	}
	// Farther truth ⇒ larger NLPD.
	near, _ := NLPD(0, 1, 0.5)
	far, _ := NLPD(0, 1, 3)
	if near >= far {
		t.Fatal("NLPD should grow with error")
	}
}

func TestMNLPD(t *testing.T) {
	means := []float64{0, 1}
	vars := []float64{1, 1}
	truth := []float64{0, 1}
	got, err := MNLPD(means, vars, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5*math.Log(2*math.Pi)) > 1e-12 {
		t.Fatalf("MNLPD = %v", got)
	}
	if _, err := MNLPD(means, vars, []float64{1}); !errors.Is(err, ErrLength) {
		t.Fatal("length error expected")
	}
	if _, err := MNLPD(nil, nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty error expected")
	}
	if _, err := MNLPD([]float64{0}, []float64{-1}, []float64{0}); err == nil {
		t.Fatal("negative variance should fail")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if _, err := a.MAE(); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty MAE should fail")
	}
	if _, err := a.MNLPD(); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty MNLPD should fail")
	}
	a.Add(1, 2)
	if err := a.AddProb(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
	mae, err := a.MAE()
	if err != nil || mae != 1 {
		t.Fatalf("MAE = %v err=%v", mae, err)
	}
	nl, err := a.MNLPD()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(2*math.Pi) + 0.5
	if math.Abs(nl-want) > 1e-12 {
		t.Fatalf("MNLPD = %v, want %v", nl, want)
	}
	if err := a.AddProb(0, -1, 0); err == nil {
		t.Fatal("bad variance should fail")
	}

	var b Accumulator
	b.Add(5, 5)
	b.Merge(a)
	if b.N() != 3 {
		t.Fatalf("merged N = %d", b.N())
	}
	mnl, err := b.MNLPD()
	if err != nil || math.Abs(mnl-want) > 1e-12 {
		t.Fatalf("merged MNLPD = %v err=%v", mnl, err)
	}
}

// Property: accumulator MAE/MNLPD agree with batch formulas.
func TestQuickAccumulatorAgreesWithBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		means := make([]float64, n)
		vars := make([]float64, n)
		truth := make([]float64, n)
		var a Accumulator
		for i := 0; i < n; i++ {
			means[i] = rng.NormFloat64()
			vars[i] = 0.1 + rng.Float64()
			truth[i] = rng.NormFloat64()
			if err := a.AddProb(means[i], vars[i], truth[i]); err != nil {
				return false
			}
		}
		wantMAE, err := MAE(means, truth)
		if err != nil {
			return false
		}
		wantMNLPD, err := MNLPD(means, vars, truth)
		if err != nil {
			return false
		}
		gotMAE, err := a.MAE()
		if err != nil {
			return false
		}
		gotMNLPD, err := a.MNLPD()
		if err != nil {
			return false
		}
		return math.Abs(gotMAE-wantMAE) < 1e-9 && math.Abs(gotMNLPD-wantMNLPD) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage95(t *testing.T) {
	var a Accumulator
	if _, err := a.Coverage95(); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty coverage should fail")
	}
	// Truth at the mean: inside any interval.
	if err := a.AddProb(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Truth 3σ away: outside the 95% interval.
	if err := a.AddProb(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	cov, err := a.Coverage95()
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", cov)
	}
	var b Accumulator
	_ = b.AddProb(0, 1, 0.1)
	b.Merge(a)
	cov, _ = b.Coverage95()
	if math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Fatalf("merged coverage = %v", cov)
	}
}

// Property: well-specified Gaussian samples give ≈95% coverage.
func TestQuickCoverageCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a Accumulator
	const n = 20000
	for i := 0; i < n; i++ {
		mean := rng.NormFloat64() * 3
		sd := 0.5 + rng.Float64()
		truth := mean + rng.NormFloat64()*sd
		if err := a.AddProb(mean, sd*sd, truth); err != nil {
			t.Fatal(err)
		}
	}
	cov, err := a.Coverage95()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-0.95) > 0.01 {
		t.Fatalf("coverage = %v, want ≈0.95", cov)
	}
}
