// Package timeseries provides the basic time series substrate used by
// every layer of SMiLer: fixed-rate series of sensor observations,
// segment views, z-normalization, linear re-interpolation and a
// bounded append-only history buffer.
//
// Terminology follows the paper (Section 3.1): a time series C of a
// sensor is a sequence of observations c_0, c_1, ...; a d-length
// segment C_{t,d} is the contiguous run of d points starting at index
// t; the segment ending at time t0 with length d is the model input
// x_{0,d} of a prediction request.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// ErrBounds is returned when a requested segment lies outside the series.
var ErrBounds = errors.New("timeseries: segment out of bounds")

// ErrEmpty is returned for operations that need at least one point.
var ErrEmpty = errors.New("timeseries: empty series")

// Series is a fixed-sample-rate time series of one sensor.
type Series struct {
	id     string
	points []float64
}

// New returns a series with the given sensor id and initial points.
// The points slice is copied.
func New(id string, points []float64) *Series {
	p := make([]float64, len(points))
	copy(p, points)
	return &Series{id: id, points: p}
}

// ID returns the sensor identifier.
func (s *Series) ID() string { return s.id }

// Len returns the number of observations |C|.
func (s *Series) Len() int { return len(s.points) }

// At returns the observation c_t.
func (s *Series) At(t int) float64 { return s.points[t] }

// Append adds an observation to the end of the series.
func (s *Series) Append(v float64) { s.points = append(s.points, v) }

// Values returns the underlying observation slice (not a copy). The
// caller must not mutate it.
func (s *Series) Values() []float64 { return s.points }

// Segment returns the d-length segment C_{t,d} = {c_t, ..., c_{t+d-1}}
// as a view into the series.
func (s *Series) Segment(t, d int) ([]float64, error) {
	if t < 0 || d <= 0 || t+d > len(s.points) {
		return nil, fmt.Errorf("%w: t=%d d=%d len=%d", ErrBounds, t, d, len(s.points))
	}
	return s.points[t : t+d], nil
}

// Suffix returns the d-length segment ending at the last observation —
// the model input x_{0,d} of a prediction request issued "now".
func (s *Series) Suffix(d int) ([]float64, error) {
	return s.Segment(len(s.points)-d, d)
}

// Truncate shortens the series to its first n points. It is used to
// carve off leave-out test tails for evaluation.
func (s *Series) Truncate(n int) error {
	if n < 0 || n > len(s.points) {
		return ErrBounds
	}
	s.points = s.points[:n]
	return nil
}

// Split returns two new series: the first n points and the remaining
// tail. Both copies are independent of s.
func (s *Series) Split(n int) (head, tail *Series, err error) {
	if n < 0 || n > len(s.points) {
		return nil, nil, ErrBounds
	}
	return New(s.id, s.points[:n]), New(s.id, s.points[n:]), nil
}

// Stats holds first and second moment summaries of a slice of values.
type Stats struct {
	Mean, Std float64
}

// Summarize computes the mean and (population) standard deviation.
func Summarize(values []float64) (Stats, error) {
	if len(values) == 0 {
		return Stats{}, ErrEmpty
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return Stats{Mean: mean, Std: math.Sqrt(ss / float64(len(values)))}, nil
}

// ZNormalize returns a z-normalized copy of values: zero mean, unit
// standard deviation. A constant input normalizes to all zeros (the
// paper z-normalizes every sensor's series before indexing).
func ZNormalize(values []float64) []float64 {
	out := make([]float64, len(values))
	st, err := Summarize(values)
	if err != nil {
		return out
	}
	if st.Std == 0 {
		return out
	}
	for i, v := range values {
		out[i] = (v - st.Mean) / st.Std
	}
	return out
}

// Normalizer z-normalizes with frozen statistics so streaming points
// can be mapped into the same normalized space as the history.
type Normalizer struct {
	stats Stats
}

// NewNormalizer fits a normalizer on values.
func NewNormalizer(values []float64) (*Normalizer, error) {
	st, err := Summarize(values)
	if err != nil {
		return nil, err
	}
	return &Normalizer{stats: st}, nil
}

// NewNormalizerFromStats reinstates a normalizer with exactly the
// given frozen statistics — the checkpoint-restore path, where refitting
// on reconstructed points would reproduce the moments only to within
// rounding and break bit-identical recovery.
func NewNormalizerFromStats(st Stats) *Normalizer {
	return &Normalizer{stats: st}
}

// Stats returns the frozen statistics.
func (n *Normalizer) Stats() Stats { return n.stats }

// Apply maps a raw observation into normalized space.
func (n *Normalizer) Apply(v float64) float64 {
	if n.stats.Std == 0 {
		return 0
	}
	return (v - n.stats.Mean) / n.stats.Std
}

// Invert maps a normalized value back to raw space.
func (n *Normalizer) Invert(z float64) float64 {
	return z*n.stats.Std + n.stats.Mean
}

// InvertVariance maps a predictive variance in normalized space back to
// raw space (variance scales by Std²).
func (n *Normalizer) InvertVariance(v float64) float64 {
	return v * n.stats.Std * n.stats.Std
}

// Resample linearly re-interpolates values onto n evenly spaced points
// spanning the same interval. The paper assumes a fixed sample rate and
// notes users can re-interpolate when the rate changes; this is that
// operation.
func Resample(values []float64, n int) ([]float64, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	if n <= 0 {
		return nil, fmt.Errorf("timeseries: resample target %d must be positive", n)
	}
	out := make([]float64, n)
	if n == 1 || len(values) == 1 {
		for i := range out {
			out[i] = values[0]
		}
		return out, nil
	}
	scale := float64(len(values)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(values)-1 {
			out[i] = values[len(values)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = values[lo]*(1-frac) + values[lo+1]*frac
	}
	return out, nil
}

// FillMissing replaces NaN observations by linear interpolation between
// the nearest finite neighbours (edges are held at the nearest finite
// value). It returns the number of points filled, or an error if there
// is no finite point at all.
func FillMissing(values []float64) (int, error) {
	n := len(values)
	if n == 0 {
		return 0, ErrEmpty
	}
	firstFinite := -1
	for i, v := range values {
		if !math.IsNaN(v) {
			firstFinite = i
			break
		}
	}
	if firstFinite == -1 {
		return 0, errors.New("timeseries: all values are missing")
	}
	filled := 0
	for i := 0; i < firstFinite; i++ {
		values[i] = values[firstFinite]
		filled++
	}
	lastFinite := firstFinite
	for i := firstFinite + 1; i < n; i++ {
		if !math.IsNaN(values[i]) {
			if gap := i - lastFinite; gap > 1 {
				step := (values[i] - values[lastFinite]) / float64(gap)
				for j := lastFinite + 1; j < i; j++ {
					values[j] = values[lastFinite] + step*float64(j-lastFinite)
					filled++
				}
			}
			lastFinite = i
		}
	}
	for i := lastFinite + 1; i < n; i++ {
		values[i] = values[lastFinite]
		filled++
	}
	return filled, nil
}
