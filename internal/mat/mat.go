// Package mat provides the small dense linear-algebra kernel used by the
// Gaussian Process predictors: column-dense matrices, Cholesky
// factorization of symmetric positive definite systems, triangular
// solves, SPD inversion and log-determinants.
//
// The package is deliberately minimal — it implements exactly the
// operations the semi-lazy GP needs on k×k systems (k is the number of
// nearest neighbours, typically 8–128) and favours clarity and numeric
// robustness over asymptotic tricks. All matrices are row-major.
package mat

import (
	"errors"
	"fmt"
	"math"

	"smiler/internal/memsys"
)

// ErrNotSPD is returned by Cholesky-based routines when the input matrix
// is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
	pooled     bool // data came from memsys; Release returns it
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// GetDense allocates an r×c zero matrix whose backing slab comes from
// the memsys pool. It is interchangeable with NewDense (a pooled slab
// is zeroed on Get); Release returns the slab. Never calling Release is
// safe — the slab is ordinary garbage — it just forfeits the reuse.
func GetDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: memsys.GetFloats(r * c), pooled: true}
}

// Release returns a pooled matrix's slab to memsys. Idempotent: the
// first call detaches the backing data (subsequent At/Set panic loudly
// instead of corrupting a recycled slab), later calls are no-ops. A
// no-op on matrices from NewDense/NewDenseData.
func (m *Dense) Release() {
	if m == nil || !m.pooled || m.data == nil {
		return
	}
	d := m.data
	m.data = nil
	memsys.PutFloats(d)
}

// NewDenseData wraps data (length r*c, row-major) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major backing slice (not a copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom copies src into m. The shapes must match.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.rows != src.rows || m.cols != src.cols {
		return ErrShape
	}
	copy(m.data, src.data)
	return nil
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, ErrShape
	}
	out := NewDense(a.rows, b.cols)
	if err := MulTo(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulTo computes a*b into out, which must be a.rows×b.cols and may be
// dirty (it is cleared first). out must not alias a or b.
func MulTo(out, a, b *Dense) error {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		return ErrShape
	}
	clear(out.data)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// MulVec returns a·x as a new vector.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, ErrShape
	}
	out := make([]float64, a.rows)
	if err := MulVecTo(out, a, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTo computes a·x into out (length a.rows). out must not alias x.
func MulVecTo(out []float64, a *Dense, x []float64) error {
	if a.cols != len(x) || a.rows != len(out) {
		return ErrShape
	}
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return nil
}

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// AXPY computes y ← a·x + y in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies every element of x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Cholesky holds the lower-triangular Cholesky factor L of an SPD
// matrix A = L·Lᵀ, and exposes solves against it.
type Cholesky struct {
	n int
	l *Dense // lower triangular; upper part is zero
}

// NewCholesky factors the SPD matrix a. It returns ErrNotSPD when a
// pivot is non-positive (within a tiny tolerance scaled by the matrix).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	c := &Cholesky{}
	if err := c.FactorInto(NewDense(a.rows, a.rows), a); err != nil {
		return nil, err
	}
	return c, nil
}

// GetCholesky is NewCholesky with the factor stored in a pooled matrix;
// Release (or the factor's own Release) returns the slab.
func GetCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	l := GetDense(a.rows, a.rows)
	c := &Cholesky{}
	if err := c.FactorInto(l, a); err != nil {
		l.Release()
		return nil, err
	}
	return c, nil
}

// FactorInto factors the SPD matrix a, storing L in the caller-provided
// n×n matrix l (cleared first, so reused scratch is fine) and pointing
// c at it. On error c is left unusable and l holds garbage.
func (c *Cholesky) FactorInto(l, a *Dense) error {
	if a.rows != a.cols {
		return ErrShape
	}
	n := a.rows
	if l.rows != n || l.cols != n {
		return ErrShape
	}
	clear(l.data)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(d)
		lrowj[j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / ljj
		}
	}
	c.n = n
	c.l = l
	return nil
}

// Size returns the order of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor (a view, not a copy).
func (c *Cholesky) L() *Dense { return c.l }

// Release returns the factor's slab to the pool when it is pooled
// (GetCholesky/GetPrefix); a no-op otherwise. Idempotent.
func (c *Cholesky) Release() {
	if c != nil {
		c.l.Release()
	}
}

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, ErrShape
	}
	x := make([]float64, c.n)
	if err := c.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecTo solves A·x = b into caller storage x (length n). x may
// alias b — each b[i] is consumed before x[i] is written.
func (c *Cholesky) SolveVecTo(x, b []float64) error {
	if len(b) != c.n || len(x) != c.n {
		return ErrShape
	}
	// Forward substitution: L·y = b (y stored in x).
	for i := 0; i < c.n; i++ {
		s := b[i]
		row := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return nil
}

// Solve solves A·X = B for a matrix right-hand side.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	if b.rows != c.n {
		return nil, ErrShape
	}
	out := NewDense(b.rows, b.cols)
	col := make([]float64, c.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := c.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Prefix returns the Cholesky factorization of the leading k×k
// principal submatrix of the factored matrix. Column j of a Cholesky
// factor depends only on the leading j×j block of the input, so the
// leading k×k block of L is exactly the factor of the leading k×k
// submatrix — Prefix just copies it out, no refactorization.
func (c *Cholesky) Prefix(k int) (*Cholesky, error) {
	return c.prefix(k, NewDense)
}

// GetPrefix is Prefix with the copied factor block in a pooled matrix;
// release it via the returned factor's Release.
func (c *Cholesky) GetPrefix(k int) (*Cholesky, error) {
	return c.prefix(k, GetDense)
}

func (c *Cholesky) prefix(k int, alloc func(r, cc int) *Dense) (*Cholesky, error) {
	if k <= 0 || k > c.n {
		return nil, ErrShape
	}
	l := alloc(k, k)
	for i := 0; i < k; i++ {
		copy(l.Row(i)[:i+1], c.l.Row(i)[:i+1])
	}
	return &Cholesky{n: k, l: l}, nil
}

// Inverse returns A⁻¹ computed from the factorization by inverting the
// triangular factor (A⁻¹ = L⁻ᵀ·L⁻¹). Exploiting triangularity costs
// ~n³/2 flops instead of the 2n³ of n full solves, and the result is
// symmetric by construction.
func (c *Cholesky) Inverse() (*Dense, error) {
	inv := NewDense(c.n, c.n)
	linv := NewDense(c.n, c.n)
	if err := c.InverseTo(inv, linv); err != nil {
		return nil, err
	}
	return inv, nil
}

// InverseTo computes A⁻¹ into inv using linv as triangular scratch;
// both must be n×n and may be dirty (every entry consumed is written
// first). inv, linv and the factor must all be distinct.
func (c *Cholesky) InverseTo(inv, linv *Dense) error {
	n := c.n
	if inv.rows != n || inv.cols != n || linv.rows != n || linv.cols != n {
		return ErrShape
	}
	// L⁻¹ by forward substitution down each column; lower triangular.
	// Only the lower triangle of linv is written, and only written
	// entries are read back, so no clear is needed.
	for j := 0; j < n; j++ {
		ljj := c.l.At(j, j)
		if ljj == 0 {
			return ErrNotSPD
		}
		linv.Set(j, j, 1/ljj)
		for i := j + 1; i < n; i++ {
			lrow := c.l.Row(i)
			var s float64
			for k := j; k < i; k++ {
				s += lrow[k] * linv.At(k, j)
			}
			linv.Set(i, j, -s/lrow[i])
		}
	}
	// (A⁻¹)_ij = Σ_{m ≥ max(i,j)} L⁻¹_mi · L⁻¹_mj.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for m := j; m < n; m++ {
				s += linv.At(m, i) * linv.At(m, j)
			}
			inv.Set(i, j, s)
			inv.Set(j, i, s)
		}
	}
	return nil
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveSPDVec factors a and solves a·x = b in one call.
func SolveSPDVec(a *Dense, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.SolveVec(b)
}

// AddDiagonal adds v to every diagonal element of the square matrix a in
// place. It is used to add jitter/noise terms to covariance matrices.
func AddDiagonal(a *Dense, v float64) error {
	if a.rows != a.cols {
		return ErrShape
	}
	for i := 0; i < a.rows; i++ {
		a.data[i*a.cols+i] += v
	}
	return nil
}

// SymmetrizeInPlace replaces a with (a + aᵀ)/2, cleaning up asymmetry
// introduced by floating-point accumulation.
func SymmetrizeInPlace(a *Dense) error {
	if a.rows != a.cols {
		return ErrShape
	}
	for i := 0; i < a.rows; i++ {
		for j := i + 1; j < a.cols; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return nil
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between a and b; useful in tests.
func MaxAbsDiff(a, b *Dense) (float64, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return 0, ErrShape
	}
	var m float64
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}
