package load

import (
	"fmt"
	"sync"

	"smiler/internal/datasets"
)

// source owns the sensor population: ids and one lazy deterministic
// stream per sensor. Streams advance under a per-sensor mutex so
// concurrent workers hitting the same sensor still observe a single
// coherent series (per-sensor ordering is what the server's sharded
// pipeline preserves; the loader must not feed it interleaved
// garbage). Memory is O(1) per sensor (~250 B), which is what makes a
// 10⁶-sensor population practical in one loader process.
type source struct {
	prefix  string
	kind    datasets.Kind
	seed    int64
	ids     []string
	mus     []sync.Mutex
	streams []*datasets.Stream
}

func newSource(prefix string, kind datasets.Kind, seed int64, n int) (*source, error) {
	s := &source{
		prefix:  prefix,
		kind:    kind,
		seed:    seed,
		ids:     make([]string, n),
		mus:     make([]sync.Mutex, n),
		streams: make([]*datasets.Stream, n),
	}
	for i := 0; i < n; i++ {
		s.ids[i] = fmt.Sprintf("%s-%07d", prefix, i)
		st, err := datasets.NewStream(kind, seed, i)
		if err != nil {
			return nil, err
		}
		s.streams[i] = st
	}
	return s, nil
}

func (s *source) len() int { return len(s.ids) }

func (s *source) id(i int) string { return s.ids[i] }

// history draws the sensor's bootstrap history (the first n values of
// its stream). Call once per sensor, before next.
func (s *source) history(i, n int) []float64 {
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.streams[i].Take(n)
}

// next draws the sensor's next observation value.
func (s *source) next(i int) float64 {
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.streams[i].Next()
}
