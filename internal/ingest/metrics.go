package ingest

import (
	"strconv"

	"smiler/internal/obs"
)

// RegisterMetrics bridges the pipeline's counters into a metrics
// registry as lazy collectors: the shard workers keep writing their
// own atomics (zero extra hot-path cost) and the registry reads them
// at scrape time. Safe to call on a nil registry (no-op). The shard
// label is the shard index; the apply-latency counter is a running
// sum of seconds, so rate(latency)/rate(processed) is the mean
// enqueue-to-applied latency over any scrape window — the same
// quantity /pipeline/stats reports as AvgLatencyMicros since startup.
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("smiler_ingest_shards",
		"Shard workers in the ingestion pipeline.",
		func() float64 { return float64(len(p.shards)) })
	reg.GaugeFunc("smiler_ingest_queue_capacity",
		"Per-shard bounded queue capacity.",
		func() float64 { return float64(p.cfg.QueueSize) })
	for _, sh := range p.shards {
		sh := sh
		label := obs.L("shard", strconv.Itoa(sh.id))
		reg.CounterFunc("smiler_ingest_enqueued_total",
			"Observations accepted into shard queues.",
			func() float64 { return float64(sh.enqueued.Load()) }, label)
		reg.CounterFunc("smiler_ingest_processed_total",
			"Observations applied to the system.",
			func() float64 { return float64(sh.processed.Load()) }, label)
		reg.CounterFunc("smiler_ingest_dropped_total",
			"Observations shed by the DropNewest backpressure policy.",
			func() float64 { return float64(sh.dropped.Load()) }, label)
		reg.CounterFunc("smiler_ingest_errors_total",
			"Observations whose asynchronous apply failed.",
			func() float64 { return float64(sh.errs.Load()) }, label)
		reg.CounterFunc("smiler_ingest_batches_total",
			"Micro-batches drained from shard queues.",
			func() float64 { return float64(sh.batches.Load()) }, label)
		reg.CounterFunc("smiler_ingest_apply_latency_seconds_total",
			"Cumulative enqueue-to-applied latency.",
			func() float64 { return float64(sh.latencyNs.Load()) / 1e9 }, label)
		reg.GaugeFunc("smiler_ingest_queue_depth",
			"Observations waiting in the shard queue.",
			func() float64 { return float64(len(sh.ch)) }, label)
	}
	co := p.co
	reg.CounterFunc("smiler_forecast_cache_hits_total",
		"Forecasts served from the per-sensor cache.",
		func() float64 { return float64(co.hits.Load()) })
	reg.CounterFunc("smiler_forecast_cache_misses_total",
		"Forecasts that ran a kNN search + model fit.",
		func() float64 { return float64(co.misses.Load()) })
	reg.CounterFunc("smiler_forecast_coalesced_waits_total",
		"Forecast requests that piggybacked on an in-flight identical computation.",
		func() float64 { return float64(co.waits.Load()) })
	reg.CounterFunc("smiler_forecast_cache_invalidations_total",
		"Per-sensor forecast cache flushes.",
		func() float64 { return float64(co.invalidations.Load()) })
	reg.GaugeFunc("smiler_forecast_cache_size",
		"(sensor, horizon) forecasts cached right now.",
		func() float64 { return float64(co.stats().CacheSize) })
}
