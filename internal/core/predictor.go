// Package core implements the paper's primary contribution: the
// semi-lazy time series predictor (Definition 3.1) and the machinery
// around it — the Aggregation Regression and Gaussian Process
// instantiations of the abstract predictor (Section 5.2), the
// ensemble matrix with likelihood-driven self-adaptive weights
// (Sections 3.2.2 and 5.1.1), the sleep-and-recovery scheduler
// (Section 5.1.2) and the per-sensor pipeline that glues the Search
// Step (SMiLer Index) to the Prediction Step.
package core

import (
	"errors"
	"fmt"
	"math"

	"smiler/internal/fault"
	"smiler/internal/gp"
	"smiler/internal/memsys"
)

// Prediction is the posterior of an h-step-ahead observation.
type Prediction struct {
	Mean     float64
	Variance float64
}

// Valid reports whether the prediction is finite with positive
// variance.
func (p Prediction) Valid() bool {
	return !math.IsNaN(p.Mean) && !math.IsInf(p.Mean, 0) && p.Variance > 0 && !math.IsInf(p.Variance, 0)
}

// LogLikelihood returns log N(y | mean, variance) — the predictor
// evaluation signal of Eqn. 7.
func (p Prediction) LogLikelihood(y float64) float64 {
	d := y - p.Mean
	return -0.5*math.Log(2*math.Pi*p.Variance) - d*d/(2*p.Variance)
}

// Predictor is the abstract semi-lazy predictor f(x₀, X_{k,d}, Y_h)
// of Definition 3.1: given the query segment and its kNN training
// pairs, produce the posterior of the h-step-ahead value.
type Predictor interface {
	// Predict builds the query-dependent model on (x, y) and evaluates
	// it at x0. Implementations may carry state across calls (the GP
	// predictor warm-starts its hyperparameters) but must be usable
	// for a fresh query each call.
	Predict(x0 []float64, x [][]float64, y []float64) (Prediction, error)
	// Name identifies the instantiation ("AR", "GP") for reporting.
	Name() string
}

// ErrNoNeighbors is returned when a predictor receives an empty kNN set.
var ErrNoNeighbors = errors.New("core: no neighbours to predict from")

// varianceFloor keeps likelihoods finite when a kNN set is degenerate
// (all labels identical).
const varianceFloor = 1e-9

// ARPredictor is the simple Aggregation Regression predictor
// (Eqns. 10–13): pseudo-mean = average of the neighbour labels,
// pseudo-variance = their population variance.
type ARPredictor struct{}

// NewAR returns an Aggregation Regression predictor.
func NewAR() *ARPredictor { return &ARPredictor{} }

// Name implements Predictor.
func (*ARPredictor) Name() string { return "AR" }

// Predict implements Predictor.
func (*ARPredictor) Predict(x0 []float64, x [][]float64, y []float64) (Prediction, error) {
	if len(y) == 0 {
		return Prediction{}, ErrNoNeighbors
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	mean := sum / float64(len(y))
	var ss float64
	for _, v := range y {
		d := v - mean
		ss += d * d
	}
	variance := ss / float64(len(y))
	if variance < varianceFloor {
		variance = varianceFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}

// GPObjective selects the hyperparameter training objective.
type GPObjective int

const (
	// ObjectiveLOO maximizes the leave-one-out predictive likelihood —
	// the paper's choice (Eqns. 19–20, following [64]).
	ObjectiveLOO GPObjective = iota
	// ObjectiveML maximizes the log marginal likelihood — the textbook
	// alternative, provided for the training-objective ablation.
	ObjectiveML
)

// GPPredictor instantiates the abstract predictor with a Gaussian
// Process (Section 5.2.2). The first query runs a full conjugate-
// gradient optimization of the training objective from a data-driven
// seed; subsequent queries warm-start from the previous
// hyperparameters and take a fixed small number of CG steps — the
// paper's "online training in continuous prediction".
type GPPredictor struct {
	// FullIterations is the CG budget of the initial optimization
	// (default 20).
	FullIterations int
	// OnlineIterations is the CG budget of every subsequent refresh
	// (the paper uses five; default 5).
	OnlineIterations int
	// Objective selects LOO (default, the paper's) or ML training.
	Objective GPObjective

	hyper   gp.Hyper
	trained bool
}

// NewGP returns a GP predictor with the paper's training budgets.
func NewGP() *GPPredictor {
	return &GPPredictor{FullIterations: 20, OnlineIterations: 5}
}

// Name implements Predictor.
func (*GPPredictor) Name() string { return "GP" }

// Hyper returns the current hyperparameters (zero value before the
// first query).
func (g *GPPredictor) Hyper() gp.Hyper { return g.hyper }

// SetHyper seeds the warm-start hyperparameters (used when restoring a
// checkpoint). Invalid values leave the predictor untrained.
func (g *GPPredictor) SetHyper(h gp.Hyper) {
	if h.Validate() == nil {
		g.hyper = h
		g.trained = true
	}
}

// Predict implements Predictor.
func (g *GPPredictor) Predict(x0 []float64, x [][]float64, y []float64) (Prediction, error) {
	if len(y) == 0 {
		return Prediction{}, ErrNoNeighbors
	}
	if err := fault.Check(fault.PointGPFit); err != nil {
		return Prediction{}, fmt.Errorf("core: GP fit: %w", err)
	}
	iters := g.OnlineIterations
	init := g.hyper
	if !g.trained || init.Validate() != nil {
		init = gp.HeuristicHyper(x, y)
		iters = g.FullIterations
	}
	optimize := gp.Optimize
	if g.Objective == ObjectiveML {
		optimize = gp.OptimizeML
	}
	res, err := optimize(x, y, init, iters)
	if err != nil {
		// A broken warm start (e.g. the data regime shifted under the
		// stored hyperparameters) falls back to a fresh seed once.
		res, err = optimize(x, y, gp.HeuristicHyper(x, y), g.FullIterations)
		if err != nil {
			return Prediction{}, fmt.Errorf("core: GP training failed: %w", err)
		}
	}
	hyper := res.Hyper
	// Guard against the LOO prior-collapse pathology: with clustered,
	// label-noisy kNN sets the LOO objective can be indifferent between
	// "predict from neighbours" and "treat everything as independent
	// noise", and the optimizer may drive the length-scale so small
	// that the test input has numerically zero covariance with every
	// neighbour — the posterior then degenerates to the prior N(0, θ₀²)
	// regardless of the retrieved data. Detect that (no support at x0)
	// and fall back to the data-driven seed, which by construction
	// keeps neighbours within one length-scale.
	if !supported(x0, x, hyper) {
		hyper = gp.HeuristicHyper(x, y)
	}
	g.hyper = hyper
	g.trained = true

	model, err := gp.Fit(x, y, hyper)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: GP conditioning failed: %w", err)
	}
	// The model is query-transient: only the warm-start Hyper survives
	// this call, so its pooled state goes straight back to memsys.
	defer model.Release()
	scratch := memsys.GetFloats(2 * len(y))
	defer memsys.PutFloats(scratch)
	mean, variance, err := model.PredictBuf(x0, scratch)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: GP prediction failed: %w", err)
	}
	if variance < varianceFloor {
		variance = varianceFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}

// ColumnPredictor is implemented by predictors that can evaluate one
// ensemble cell through a shared per-column gp.Column, reusing the
// column's Gram-base matrix across every cell with the same d. The
// result must be numerically identical to Predict on the same prefix —
// the sharing only avoids recomputation.
type ColumnPredictor interface {
	PredictColumn(col *gp.Column, k int) (Prediction, error)
}

// PredictColumn implements ColumnPredictor: it mirrors Predict exactly
// (warm start, fallback reseed, prior-collapse guard) but routes every
// optimization and conditioning through the column's shared Gram base,
// so the returned posterior is bit-identical to Predict on the leading
// k pairs.
func (g *GPPredictor) PredictColumn(col *gp.Column, k int) (Prediction, error) {
	if k > col.Len() {
		k = col.Len()
	}
	if k <= 0 {
		return Prediction{}, ErrNoNeighbors
	}
	if err := fault.Check(fault.PointGPFit); err != nil {
		return Prediction{}, fmt.Errorf("core: GP fit: %w", err)
	}
	x, y := col.XY(k)
	x0 := col.X0()
	iters := g.OnlineIterations
	init := g.hyper
	if !g.trained || init.Validate() != nil {
		init = gp.HeuristicHyper(x, y)
		iters = g.FullIterations
	}
	optimize := col.Optimize
	if g.Objective == ObjectiveML {
		optimize = col.OptimizeML
	}
	res, err := optimize(k, init, iters)
	if err != nil {
		res, err = optimize(k, gp.HeuristicHyper(x, y), g.FullIterations)
		if err != nil {
			return Prediction{}, fmt.Errorf("core: GP training failed: %w", err)
		}
	}
	hyper := res.Hyper
	if !supported(x0, x, hyper) {
		hyper = gp.HeuristicHyper(x, y)
	}
	g.hyper = hyper
	g.trained = true

	model, err := col.Fit(k, hyper)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: GP conditioning failed: %w", err)
	}
	defer model.Release()
	scratch := memsys.GetFloats(2 * k)
	defer memsys.PutFloats(scratch)
	mean, variance, err := model.PredictBuf(x0, scratch)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: GP prediction failed: %w", err)
	}
	if variance < varianceFloor {
		variance = varianceFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}

// OptimizeColumnHyper trains the hyperparameters once on the column's
// full (largest-k) training set with the predictor's usual warm-start,
// fallback and prior-collapse rules, updates the warm-start state, and
// returns the resulting shared Θ — the SharedHyper driver step.
func (g *GPPredictor) OptimizeColumnHyper(col *gp.Column) (gp.Hyper, error) {
	if err := fault.Check(fault.PointGPFit); err != nil {
		return gp.Hyper{}, fmt.Errorf("core: GP fit: %w", err)
	}
	k := col.Len()
	x, y := col.XY(k)
	iters := g.OnlineIterations
	init := g.hyper
	if !g.trained || init.Validate() != nil {
		init = gp.HeuristicHyper(x, y)
		iters = g.FullIterations
	}
	optimize := col.Optimize
	if g.Objective == ObjectiveML {
		optimize = col.OptimizeML
	}
	res, err := optimize(k, init, iters)
	if err != nil {
		res, err = optimize(k, gp.HeuristicHyper(x, y), g.FullIterations)
		if err != nil {
			return gp.Hyper{}, fmt.Errorf("core: GP training failed: %w", err)
		}
	}
	hyper := res.Hyper
	if !supported(col.X0(), x, hyper) {
		hyper = gp.HeuristicHyper(x, y)
	}
	g.hyper = hyper
	g.trained = true
	return hyper, nil
}

// supported reports whether the test input retains meaningful
// covariance with at least one training point under hp: the largest
// normalized kernel value c(x0,xi)/θ₀² must exceed a small floor.
func supported(x0 []float64, x [][]float64, hp gp.Hyper) bool {
	s2 := hp.Signal * hp.Signal
	if s2 <= 0 {
		return false
	}
	for _, xi := range x {
		if hp.Cov(x0, xi)/s2 > 0.05 {
			return true
		}
	}
	return false
}

// PredictorFactory builds one predictor instance per ensemble cell.
type PredictorFactory func() Predictor
