package obs

import (
	"errors"
	"testing"
	"time"
)

func TestTraceSpansAndStats(t *testing.T) {
	tr := NewTrace("s1", 1, 3)
	done := tr.StartSpan("search", "")
	time.Sleep(time.Millisecond)
	done()
	tr.AddSpan("verify", "", 2*time.Millisecond, 3*time.Millisecond)
	tr.SetStat("knn_candidates", 12)
	tr.Finish(nil)

	if tr.Sensor != "s1" || len(tr.Horizons) != 2 {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Name != "search" || tr.Spans[0].Duration <= 0 {
		t.Fatalf("search span = %+v", tr.Spans[0])
	}
	if tr.Spans[1].OffsetS != 0.002 || tr.Spans[1].Duration != 0.003 {
		t.Fatalf("verify span = %+v", tr.Spans[1])
	}
	if tr.Stats["knn_candidates"] != 12 {
		t.Fatalf("stats = %v", tr.Stats)
	}
	if tr.TotalS <= 0 || tr.Error != "" {
		t.Fatalf("finish: total=%v err=%q", tr.TotalS, tr.Error)
	}
}

func TestTraceFinishError(t *testing.T) {
	tr := NewTrace("s")
	tr.Finish(errors.New("boom"))
	if tr.Error != "boom" {
		t.Fatalf("error = %q", tr.Error)
	}
}

func TestNilTraceNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x", "")()
	tr.AddSpan("y", "", 0, 0)
	tr.SetStat("z", 1)
	tr.Finish(nil)
}

func TestTraceStoreRing(t *testing.T) {
	st := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace("a", i)
		tr.Finish(nil)
		st.Add(tr)
	}
	got := st.Last("a", 0)
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	// Newest first: horizons 4, 3, 2 survive.
	for i, want := range []int{4, 3, 2} {
		if got[i].Horizons[0] != want {
			t.Fatalf("Last[%d] horizon = %d, want %d", i, got[i].Horizons[0], want)
		}
	}
	if n := len(st.Last("a", 2)); n != 2 {
		t.Fatalf("Last(2) = %d traces", n)
	}
	if st.Last("missing", 0) != nil && len(st.Last("missing", 0)) != 0 {
		t.Fatal("unknown sensor must return empty")
	}
	st.Remove("a")
	if len(st.Last("a", 0)) != 0 {
		t.Fatal("Remove must drop the sensor's traces")
	}
}

func TestNilTraceStoreNoOp(t *testing.T) {
	var st *TraceStore
	st.Add(NewTrace("a"))
	if st.Last("a", 0) != nil {
		t.Fatal("nil store Last")
	}
	st.Remove("a")
}

func TestTraceStoreDefaultCapacity(t *testing.T) {
	st := NewTraceStore(0)
	for i := 0; i < DefaultTraceCapacity+5; i++ {
		tr := NewTrace("s")
		tr.Finish(nil)
		st.Add(tr)
	}
	if n := len(st.Last("s", 0)); n != DefaultTraceCapacity {
		t.Fatalf("default ring kept %d, want %d", n, DefaultTraceCapacity)
	}
}
