// Command smiler-server runs the SMiLer prediction system as an
// HTTP/JSON service. Sensors are registered and fed over the API (see
// internal/server for the routes); observations flow through a
// sharded ingestion pipeline (internal/ingest); an optional
// checkpoint file persists state across restarts.
//
// Usage:
//
//	smiler-server -addr :8080
//	smiler-server -addr :8080 -predictor ar -checkpoint state.gob
//	smiler-server -shards 8 -queue 1024 -backpressure drop-newest
//
// With -checkpoint, state is loaded at startup (if the file exists)
// and saved on clean shutdown (SIGINT/SIGTERM). Shutdown first stops
// the listener, then drains the ingestion pipeline, then writes the
// checkpoint — no accepted observation is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

// options carries every tunable of the server process.
type options struct {
	addr         string
	predictor    string
	devices      int
	maxHistory   int
	checkpoint   string
	interval     time.Duration
	shards       int
	queue        int
	batch        int
	backpressure string

	// onReady, when set, is called with the bound listen address once
	// the listener is accepting (tests use it to find an ephemeral
	// port).
	onReady func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.predictor, "predictor", "gp", "predictor: gp|ar")
	flag.IntVar(&o.devices, "devices", 1, "number of simulated GPUs")
	flag.IntVar(&o.maxHistory, "max-history", 0, "cap indexed history per sensor (0 = unlimited)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file (load at start, save at shutdown)")
	flag.DurationVar(&o.interval, "interval", 0, "fixed sample interval enabling POST /sensors/{id}/readings (0 = disabled)")
	flag.IntVar(&o.shards, "shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard ingestion queue capacity (0 = default 256)")
	flag.IntVar(&o.batch, "batch", 0, "ingestion micro-batch cap (0 = default 32)")
	flag.StringVar(&o.backpressure, "backpressure", "block", "full-queue policy: block|drop-newest|error")
	flag.Parse()
	if err := run(o); err != nil {
		log.Fatal("smiler-server: ", err)
	}
}

func run(o options) error {
	cfg := smiler.DefaultConfig()
	switch strings.ToLower(o.predictor) {
	case "gp":
		cfg.Predictor = smiler.PredictorGP
	case "ar":
		cfg.Predictor = smiler.PredictorAR
	default:
		return fmt.Errorf("unknown predictor %q", o.predictor)
	}
	cfg.Devices = o.devices
	cfg.MaxHistory = o.maxHistory

	policy, err := ingest.ParseBackpressure(o.backpressure)
	if err != nil {
		return err
	}

	sys, err := loadOrNew(cfg, o.checkpoint)
	if err != nil {
		return err
	}
	defer sys.Close()

	handler, err := server.NewWithOptions(sys, server.Options{
		Interval: o.interval,
		Pipeline: ingest.Config{
			Shards:       o.shards,
			QueueSize:    o.queue,
			MaxBatch:     o.batch,
			Backpressure: policy,
			OnError: func(obs ingest.Observation, err error) {
				log.Printf("smiler-server: observe %s: %v", obs.Sensor, err)
			},
		},
	})
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("smiler-server: listening on %s (%s predictors, %d device(s), %s backpressure)",
			ln.Addr(), strings.ToUpper(o.predictor), o.devices, policy)
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	if o.onReady != nil {
		o.onReady(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("smiler-server: %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	// The listener is stopped: drain the pipeline so every accepted
	// observation reaches the system before state is persisted.
	if err := handler.Close(); err != nil {
		return err
	}
	st := handler.Pipeline().Stats()
	log.Printf("smiler-server: pipeline drained (%d processed, %d dropped, %d errors)",
		st.Totals.Processed, st.Totals.Dropped, st.Totals.Errors)
	if o.checkpoint != "" {
		if err := saveCheckpoint(sys, o.checkpoint); err != nil {
			return fmt.Errorf("saving checkpoint: %w", err)
		}
		log.Printf("smiler-server: checkpoint saved to %s", o.checkpoint)
	}
	return <-errCh
}

// loadOrNew restores the system from a checkpoint when one exists.
func loadOrNew(cfg smiler.Config, path string) (*smiler.System, error) {
	if path == "" {
		return smiler.New(cfg)
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return smiler.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := smiler.Load(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("loading checkpoint %s: %w", path, err)
	}
	log.Printf("smiler-server: restored %d sensor(s) from %s", len(sys.Sensors()), path)
	return sys, nil
}

// saveCheckpoint writes atomically via a temp file + rename.
func saveCheckpoint(sys *smiler.System, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sys.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
