// Command smiler-server runs the SMiLer prediction system as an
// HTTP/JSON service. Sensors are registered and fed over the API (see
// internal/server for the routes); observations flow through a
// sharded ingestion pipeline (internal/ingest); an optional
// checkpoint file persists state across restarts.
//
// Usage:
//
//	smiler-server -addr :8080
//	smiler-server -addr :8080 -predictor ar -checkpoint state.gob
//	smiler-server -shards 8 -queue 1024 -backpressure drop-newest
//	smiler-server -addr :8080 -pprof -log-level debug
//	smiler-server -checkpoint state.gob -wal-dir wal/ -fsync always
//	smiler-server -predict-deadline 200ms -degraded-fallback ar1
//	smiler-server -predict-deadline 50ms -anytime -learned-lb -degraded-fallback ar1
//	smiler-server -node-id n1 -cluster-peers n1=http://h1:8080,n2=http://h2:8080,n3=http://h3:8080
//	smiler-server -node-id n4 -cluster-peers n4=http://h4:8080 -cluster-join http://h1:8080 -drain-on-term
//
// With -checkpoint, state is loaded at startup (if the file exists)
// and saved on clean shutdown (SIGINT/SIGTERM). Shutdown first stops
// the listener, then drains the ingestion pipeline, then writes the
// checkpoint — no accepted observation is lost.
//
// With -wal-dir, every accepted observation and sensor add/remove is
// appended to a sharded write-ahead log before it is applied, and
// recovered on the next start even after a crash: startup replays the
// WAL on top of the checkpoint, stopping cleanly at the first torn
// record. -fsync picks the durability/latency trade-off (see
// docs/ROBUSTNESS.md for the loss window of each policy). GET /readyz
// answers 503 until recovery completes and again while draining;
// /healthz stays pure liveness.
//
// With -degraded-fallback, predictions that fail or overrun
// -predict-deadline are answered by a cheap stateless predictor
// (persistence or AR(1)) and tagged "degraded" in the response
// instead of erroring.
//
// With -anytime, a prediction that hits -predict-deadline mid-search
// answers from the best verified-so-far neighbor set instead: the
// response carries quality "progressive" plus a numeric quality
// estimate, and only truly failed predictions reach the
// -degraded-fallback rung. -learned-lb additionally orders the
// verification rounds by a learned per-sensor lower-bound model so
// the most promising candidates are verified first; it never changes
// what a completed search returns.
//
// With -cluster-peers (and a matching -node-id), the process joins a
// cluster: a consistent-hash ring assigns each sensor a primary plus
// -replicas async followers, any node accepts any request and forwards
// it to the owner, and when a primary stops answering /readyz for
// -probe-failures consecutive probes its replica serves forecasts
// tagged degraded_reason "replica" (writes are refused with 503 until
// the primary returns). POST /cluster/migrate moves a sensor between
// nodes bit-exactly. Membership is dynamic: -cluster-join bootstraps
// a new node into a running cluster (the seed peers list names only
// this node; the elected primary admits it and rebalances sensors
// onto it in bounded batches), POST /cluster/decommission — or
// SIGTERM with -drain-on-term — drains a node's sensors to the rest
// of the cluster and exits it cleanly. See docs/CLUSTER.md.
//
// Observability: GET /metrics serves Prometheus text exposition and
// GET /debug/trace/{sensor} the recent prediction traces (see
// docs/OBSERVABILITY.md). -pprof additionally mounts the standard
// net/http/pprof profiling endpoints under /debug/pprof/ on the same
// listener; it is off by default because profiling endpoints can
// expose memory contents. Logs are structured (log/slog, text
// format); -log-level sets the floor (debug|info|warn|error).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smiler"
	"smiler/internal/cluster"
	"smiler/internal/ingest"
	"smiler/internal/obs"
	"smiler/internal/server"
	"smiler/internal/wal"
)

// options carries every tunable of the server process.
type options struct {
	addr         string
	predictor    string
	devices      int
	maxHistory   int
	checkpoint   string
	interval     time.Duration
	shards       int
	queue        int
	batch        int
	backpressure string
	logLevel     string
	pprof        bool
	workers      int
	sharedHyper  bool

	maxHotSensors  int
	spillDir       string
	disablePooling bool

	walDir          string
	fsync           string
	fsyncInterval   time.Duration
	predictDeadline time.Duration
	fallback        string
	anytime         bool
	learnedLB       bool
	runtimeMetrics  time.Duration

	nodeID            string
	clusterPeers      string
	replicas          int
	probeInterval     time.Duration
	probeFailures     int
	maxStaleness      time.Duration
	clusterSecret     string
	clusterJoin       string
	rebalanceBatch    int
	rebalanceInterval time.Duration
	drainOnTerm       bool
	drainTimeout      time.Duration

	// onReady, when set, is called with the bound listen address once
	// the listener is accepting (tests use it to find an ephemeral
	// port).
	onReady func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.predictor, "predictor", "gp", "predictor: gp|ar")
	flag.IntVar(&o.devices, "devices", 1, "number of simulated GPUs")
	flag.IntVar(&o.maxHistory, "max-history", 0, "cap indexed history per sensor (0 = unlimited)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file (load at start, save at shutdown)")
	flag.DurationVar(&o.interval, "interval", 0, "fixed sample interval enabling POST /sensors/{id}/readings (0 = disabled)")
	flag.IntVar(&o.shards, "shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard ingestion queue capacity (0 = default 256)")
	flag.IntVar(&o.batch, "batch", 0, "ingestion micro-batch cap (0 = default 32)")
	flag.StringVar(&o.backpressure, "backpressure", "block", "full-queue policy: block|drop-newest|error")
	flag.StringVar(&o.logLevel, "log-level", "info", "log floor: debug|info|warn|error")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	flag.IntVar(&o.workers, "predict-workers", 0, "prediction-step cell-fit workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.BoolVar(&o.sharedHyper, "shared-hyper", false, "share GP hyperparameters per item-query column (approximate, faster)")
	flag.IntVar(&o.maxHotSensors, "max-hot-sensors", 0, "cap on sensors kept hot in memory; the LRU excess spills to disk (0 = unlimited)")
	flag.StringVar(&o.spillDir, "spill-dir", "", "directory for cold-sensor spill files (empty = temp dir; wiped at boot)")
	flag.BoolVar(&o.disablePooling, "disable-pooling", false, "disable the memsys slab pool (A/B benchmarking; plain allocations)")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead-log directory (empty = no WAL)")
	flag.StringVar(&o.fsync, "fsync", "always", "WAL fsync policy: always|interval|off")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", 0, "fsync period for -fsync interval (0 = default 50ms)")
	flag.DurationVar(&o.predictDeadline, "predict-deadline", 0, "per-prediction deadline (0 = none)")
	flag.StringVar(&o.fallback, "degraded-fallback", "none", "degraded-mode predictor: none|persistence|ar1")
	flag.BoolVar(&o.anytime, "anytime", false, "progressive kNN search: on deadline, answer from the verified-so-far neighbor set (quality \"progressive\") instead of falling back")
	flag.BoolVar(&o.learnedLB, "learned-lb", false, "order anytime verification rounds by a learned per-sensor lower-bound tightness model (never changes results)")
	flag.DurationVar(&o.runtimeMetrics, "runtime-metrics-interval", 0, "runtime/GC telemetry sample period (0 = default 10s, negative = sample at scrape time only)")
	flag.StringVar(&o.nodeID, "node-id", "", "this node's cluster member id (enables clustering with -cluster-peers)")
	flag.StringVar(&o.clusterPeers, "cluster-peers", "", `static membership incl. self: "n1=http://host1:8080,n2=http://host2:8080"`)
	flag.IntVar(&o.replicas, "replicas", 1, "follower copies per sensor")
	flag.DurationVar(&o.probeInterval, "probe-interval", 0, "peer health probe period (0 = default 500ms)")
	flag.IntVar(&o.probeFailures, "probe-failures", 0, "consecutive probe failures before failover (0 = default 3)")
	flag.DurationVar(&o.maxStaleness, "max-staleness", 0, "staleness bound for promoted-replica reads (0 = default 5m)")
	flag.StringVar(&o.clusterSecret, "cluster-secret", "", "shared secret required on state-changing /cluster/* endpoints (empty = membership-header check only)")
	flag.StringVar(&o.clusterJoin, "cluster-join", "", "URL of an existing cluster member to join at startup (with -cluster-peers naming only this node)")
	flag.IntVar(&o.rebalanceBatch, "rebalance-batch", 0, "sensors migrated per rebalance batch (0 = default 16)")
	flag.DurationVar(&o.rebalanceInterval, "rebalance-interval", 0, "pause between rebalance batches (0 = default 200ms)")
	flag.BoolVar(&o.drainOnTerm, "drain-on-term", false, "on SIGTERM, decommission from the cluster and drain owned sensors before exiting")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 2*time.Minute, "bound on the -drain-on-term drain wait")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "smiler-server:", err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag onto a slog.Level. Empty
// defaults to info so an explicit flag value is never required.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q", s)
}

func run(o options) error {
	level, err := parseLogLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := smiler.DefaultConfig()
	switch strings.ToLower(o.predictor) {
	case "gp":
		cfg.Predictor = smiler.PredictorGP
	case "ar":
		cfg.Predictor = smiler.PredictorAR
	default:
		return fmt.Errorf("unknown predictor %q", o.predictor)
	}
	cfg.Devices = o.devices
	cfg.MaxHistory = o.maxHistory
	cfg.PredictWorkers = o.workers
	cfg.SharedHyper = o.sharedHyper
	cfg.MaxHotSensors = o.maxHotSensors
	cfg.SpillDir = o.spillDir
	cfg.DisablePooling = o.disablePooling
	cfg.PredictDeadline = o.predictDeadline
	cfg.Anytime = o.anytime
	cfg.LearnedLB = o.learnedLB
	cfg.RuntimeMetricsInterval = o.runtimeMetrics
	fb, err := smiler.ParseFallback(o.fallback)
	if err != nil {
		return err
	}
	cfg.Fallback = fb

	policy, err := ingest.ParseBackpressure(o.backpressure)
	if err != nil {
		return err
	}

	sys, cover, err := loadOrNew(cfg, o.checkpoint, logger)
	if err != nil {
		return err
	}
	defer sys.Close()
	// The flight recorder is a black box: whatever it retained gets
	// dumped to stderr if the process dies on a panic, so the last
	// failovers/migrations/WAL events survive in the crash log.
	defer func() {
		if r := recover(); r != nil {
			dumpEvents(sys, fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	opts := server.Options{
		Interval:      o.interval,
		Logger:        logger,
		StartNotReady: true,
		Pipeline: ingest.Config{
			Shards:       o.shards,
			QueueSize:    o.queue,
			MaxBatch:     o.batch,
			Backpressure: policy,
			OnError: func(obs ingest.Observation, err error) {
				logger.Warn("observe failed", "sensor", obs.Sensor, "err", err)
			},
		},
	}
	var mgr *wal.Manager
	if o.walDir != "" {
		mgr, err = openDurability(sys, cover, o, logger)
		if err != nil {
			return err
		}
		opts.SensorJournal = mgr
		opts.Pipeline.Journal = mgr.AppendObserve
		// The WAL pins the shard count its logs were written under; the
		// pipeline must shard identically or the journal hook would route
		// observations to the wrong log.
		opts.Pipeline.Shards = mgr.Shards()
		registerWALMetrics(sys.Metrics(), mgr)
	}

	opts.NodeID = o.nodeID
	handler, err := server.NewWithOptions(sys, opts)
	if err != nil {
		if mgr != nil {
			mgr.Close()
		}
		return err
	}
	var node *cluster.Node
	if o.clusterPeers != "" {
		members, err := parseClusterPeers(o.clusterPeers)
		if err != nil {
			return err
		}
		node, err = cluster.New(sys, handler, cluster.Config{
			Self:              o.nodeID,
			Members:           members,
			Replicas:          o.replicas,
			ProbeInterval:     o.probeInterval,
			ProbeFailures:     o.probeFailures,
			MaxStaleness:      o.maxStaleness,
			Secret:            o.clusterSecret,
			JoinURL:           o.clusterJoin,
			RebalanceBatch:    o.rebalanceBatch,
			RebalanceInterval: o.rebalanceInterval,
			Logger:            logger,
		})
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		defer node.Close()
		logger.Info("cluster enabled", "self", o.nodeID, "members", len(members), "replicas", o.replicas)
	}
	srv := &http.Server{
		Handler:           rootHandler(handler, o.pprof),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", ln.Addr().String(),
			"predictor", strings.ToLower(o.predictor),
			"devices", o.devices,
			"backpressure", policy.String(),
			"pprof", o.pprof,
		)
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	// Recovery (checkpoint load + WAL replay) finished before the
	// listener came up, so readiness follows immediately; /readyz flips
	// back to 503 when shutdown starts draining.
	handler.SetReady()
	// The boot marker anchors the flight recorder: every later event
	// reads relative to a known process start, and the events counter is
	// live from the first scrape.
	sys.Events().Record(obs.Event{
		Type:   "startup",
		Detail: "listening on " + ln.Addr().String() + ", predictor " + strings.ToLower(o.predictor),
	})
	if o.onReady != nil {
		o.onReady(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	// A decommissioned cluster node (POST /cluster/decommission, or
	// -drain-on-term below) finishes draining its sensors and then exits
	// cleanly through the same shutdown path a signal takes.
	var drainedCh <-chan struct{}
	if node != nil {
		drainedCh = node.Drained()
	}
	select {
	case err := <-errCh:
		return err
	case <-drainedCh:
		logger.Info("decommission drain complete; shutting down")
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		if o.drainOnTerm && node != nil && s == syscall.SIGTERM {
			// Drain-then-exit: leave the cluster map first so peers stop
			// routing here and the primary migrates our sensors away,
			// bounded by -drain-timeout. A second signal aborts the wait.
			logger.Info("draining before exit", "timeout", o.drainTimeout)
			if err := node.Decommission(""); err != nil {
				logger.Warn("decommission failed; exiting without drain", "err", err)
			} else {
				drainT := time.NewTimer(o.drainTimeout)
				select {
				case <-node.Drained():
					logger.Info("drained; exiting")
				case <-drainT.C:
					logger.Warn("drain timed out; exiting with sensors still owned")
				case s2 := <-sig:
					logger.Warn("second signal; aborting drain", "signal", s2.String())
				}
				drainT.Stop()
			}
		}
	}

	// Flip /readyz to 503 first so load balancers stop routing, then
	// stop the listener (in-flight requests get the grace period).
	handler.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	// The listener is stopped: drain the pipeline so every accepted
	// observation reaches the system before state is persisted.
	if err := handler.Close(); err != nil {
		return err
	}
	st := handler.Pipeline().Stats()
	logger.Info("pipeline drained",
		"processed", st.Totals.Processed,
		"dropped", st.Totals.Dropped,
		"errors", st.Totals.Errors,
	)
	if err := shutdownDurability(sys, mgr, o, logger); err != nil {
		return err
	}
	// Black-box dump: everything the flight recorder retained, on the
	// way out, after the shutdown checkpoint/WAL events were recorded.
	dumpEvents(sys, "shutdown")
	return <-errCh
}

// dumpEvents writes the flight recorder's retained events to stderr
// with framing lines — the black-box readout for post-mortems. A
// no-op with metrics disabled or an empty ring.
func dumpEvents(sys *smiler.System, reason string) {
	ring := sys.Events()
	if ring == nil || ring.LastSeq() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "--- flight recorder (%s, %d events recorded) ---\n", reason, ring.LastSeq())
	_, _ = ring.WriteTo(os.Stderr)
	fmt.Fprintln(os.Stderr, "--- end flight recorder ---")
}

// parseClusterPeers parses "-cluster-peers n1=http://a:1,n2=http://b:2"
// into the seed membership list (which must include this node; with
// -cluster-join it may name only this node).
func parseClusterPeers(s string) ([]cluster.Member, error) {
	var members []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("bad -cluster-peers entry %q (want id=url)", part)
		}
		members = append(members, cluster.Member{ID: id, URL: u})
	}
	if len(members) == 0 {
		return nil, errors.New("-cluster-peers is empty")
	}
	return members, nil
}

// rootHandler mounts the pprof endpoints next to the API handler when
// enabled. The server's own /debug/trace/ namespace does not collide
// with /debug/pprof/; everything else falls through to the API.
func rootHandler(api http.Handler, withPprof bool) http.Handler {
	if !withPprof {
		return api
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

// loadOrNew restores the system from a checkpoint when one exists,
// returning the WAL cover the checkpoint embeds (nil without one) for
// WAL replay to skip records the checkpoint already contains.
func loadOrNew(cfg smiler.Config, path string, logger *slog.Logger) (*smiler.System, map[int]uint64, error) {
	if path == "" {
		sys, err := smiler.New(cfg)
		return sys, nil, err
	}
	sys, cover, err := smiler.LoadFileWithCover(path, cfg)
	if errors.Is(err, os.ErrNotExist) {
		sys, err := smiler.New(cfg)
		return sys, nil, err
	}
	if err != nil {
		return nil, nil, fmt.Errorf("loading checkpoint %s: %w", path, err)
	}
	logger.Info("checkpoint restored", "sensors", len(sys.Sensors()), "path", path)
	sys.Events().Record(obs.Event{
		Type:   "checkpoint_restore",
		Detail: fmt.Sprintf("%d sensor(s) from %s", len(sys.Sensors()), path),
	})
	return sys, cover, nil
}

// saveCheckpoint writes crash-atomically: temp file, fsync, rename,
// directory fsync. A crash mid-save leaves the previous checkpoint
// intact. cover embeds the WAL positions the checkpoint reaches so
// replay can skip covered records (nil without a WAL).
func saveCheckpoint(sys *smiler.System, path string, cover map[int]uint64) error {
	return sys.SaveFileWithCover(path, cover)
}
