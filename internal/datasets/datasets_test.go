package datasets

import (
	"math"
	"strings"
	"testing"

	"smiler/internal/timeseries"
)

func TestKindString(t *testing.T) {
	if Road.String() != "ROAD" || Mall.String() != "MALL" || Net.String() != "NET" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
	if Road.SamplesPerDay() != 144 || Net.SamplesPerDay() != 288 {
		t.Fatal("sample densities wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Kind: Road, Sensors: 2, Days: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Kind: Kind(9), Sensors: 1, Days: 1},
		{Kind: Road, Sensors: 0, Days: 1},
		{Kind: Road, Sensors: 1, Days: 0},
		{Kind: Road, Sensors: 1, Days: 1, Duplicates: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if _, err := Generate(bad[0]); err == nil {
		t.Fatal("Generate should validate")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	cfg := Config{Kind: Road, Sensors: 3, Days: 2, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d series", len(a))
	}
	wantLen := 2 * Road.SamplesPerDay()
	for _, s := range a {
		if s.Len() != wantLen {
			t.Fatalf("series %s has %d points, want %d", s.ID(), s.Len(), wantLen)
		}
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatal("ids not deterministic")
		}
		for j := 0; j < a[i].Len(); j++ {
			if a[i].At(j) != b[i].At(j) {
				t.Fatal("values not deterministic")
			}
		}
	}
	// Different sensors must differ.
	same := true
	for j := 0; j < a[0].Len(); j++ {
		if a[0].At(j) != a[1].At(j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct sensors should have distinct series")
	}
}

func TestGenerateDuplicates(t *testing.T) {
	cfg := Config{Kind: Net, Sensors: 1, Duplicates: 4, Days: 1, Seed: 1}
	ss, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("got %d series, want 4", len(ss))
	}
	for _, s := range ss {
		if !strings.Contains(s.ID(), "#") {
			t.Fatalf("duplicate id %q missing suffix", s.ID())
		}
		for j := 0; j < s.Len(); j++ {
			if s.At(j) != ss[0].At(j) {
				t.Fatal("duplicates must be exact copies (paper's protocol)")
			}
		}
	}
}

func TestRoadBounded(t *testing.T) {
	ss, err := Generate(Config{Kind: Road, Sensors: 2, Days: 7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		for j := 0; j < s.Len(); j++ {
			v := s.At(j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("occupancy %v out of [0,1]", v)
			}
		}
	}
}

func TestMallNonNegativeAndSeasonal(t *testing.T) {
	ss, err := Generate(Config{Kind: Mall, Sensors: 1, Days: 14, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := ss[0]
	spd := Mall.SamplesPerDay()
	for j := 0; j < s.Len(); j++ {
		if s.At(j) < 0 {
			t.Fatalf("negative availability %v", s.At(j))
		}
	}
	// Availability at 3am should beat availability at 1pm (peak) on
	// average — the daily structure the semi-lazy search exploits.
	var night, noon float64
	days := s.Len() / spd
	for d := 0; d < days; d++ {
		night += s.At(d*spd + spd*3/24)
		noon += s.At(d*spd + spd*13/24)
	}
	if night <= noon {
		t.Fatalf("night availability (%v) should exceed peak-hour (%v)", night, noon)
	}
}

func TestNetPositiveAndDiurnal(t *testing.T) {
	ss, err := Generate(Config{Kind: Net, Sensors: 1, Days: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := ss[0]
	for j := 0; j < s.Len(); j++ {
		if s.At(j) <= 0 {
			t.Fatalf("non-positive traffic %v", s.At(j))
		}
	}
	// Autocorrelation at one day lag should be clearly positive for a
	// diurnal signal.
	z := timeseries.ZNormalize(s.Values())
	lag := Net.SamplesPerDay()
	var acf float64
	n := 0
	for j := lag; j < len(z); j++ {
		acf += z[j] * z[j-lag]
		n++
	}
	acf /= float64(n)
	if acf < 0.4 {
		t.Fatalf("daily autocorrelation %v too weak for a diurnal corpus", acf)
	}
}
