// Car-park planner — the MALL scenario: multi-horizon forecasts of
// available lots so a driver (or a routing service) can pick a mall
// that will still have space on arrival. Seasonal car-park data is
// where the cheap AR predictor nearly matches the GP (paper Fig.
// 10c), so this example runs the AR ensemble and prints arrival-time
// availability with confidence bands.
//
//	go run ./examples/parking
package main

import (
	"fmt"
	"log"

	"smiler"
	"smiler/internal/datasets"
)

const warmPoints = 2000 // ~2 weeks of 10-minute samples

func main() {
	series, err := datasets.Generate(datasets.Config{
		Kind: datasets.Mall, Sensors: 3, Days: 16, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := smiler.DefaultConfig()
	cfg.Predictor = smiler.PredictorAR // seasonal data: AR ≈ GP, much cheaper
	sys, err := smiler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, s := range series {
		if err := sys.AddSensor(s.ID(), s.Values()[:warmPoints]); err != nil {
			log.Fatal(err)
		}
	}

	// Horizons: arriving in 10, 30, 60 minutes (samples are 10 min).
	horizons := map[string]int{"10min": 1, "30min": 3, "60min": 6}
	fmt.Println("available-lot forecasts by arrival time (mean [95% band]):")
	for _, s := range series {
		fmt.Printf("\n%s (now: %.0f lots free)\n", s.ID(), s.At(warmPoints-1))
		for _, label := range []string{"10min", "30min", "60min"} {
			f, err := sys.Predict(s.ID(), horizons[label])
			if err != nil {
				log.Fatal(err)
			}
			lo, hi := f.Interval(1.96)
			if lo < 0 {
				lo = 0
			}
			fmt.Printf("  in %s: %6.0f  [%6.0f, %6.0f]\n", label, f.Mean, lo, hi)
		}
	}

	// Keep streaming for a while and report how the 30-minute forecast
	// tracked reality.
	const steps = 30
	var absErr float64
	for t := 0; t < steps; t++ {
		f, err := sys.Predict(series[0].ID(), 3)
		if err != nil {
			log.Fatal(err)
		}
		truth := series[0].At(warmPoints + t - 1 + 3)
		absErr += abs(f.Mean - truth)
		for _, s := range series {
			if err := sys.Observe(s.ID(), s.At(warmPoints+t)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\n30-minute-ahead MAE for %s over %d live steps: %.1f lots\n",
		series[0].ID(), steps, absErr/steps)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
