package bench

import (
	"strings"
	"testing"

	"smiler/internal/datasets"
	"smiler/internal/gpusim"
	"smiler/internal/index"
)

// tinySpec keeps runtimes suitable for unit tests.
func tinySpec() DatasetSpec {
	return DatasetSpec{
		Name: "ROAD",
		Gen:  datasets.Config{Kind: datasets.Road, Sensors: 1, Days: 5, Seed: 1},
		Warm: 620, TestSteps: 8,
	}
}

func tinyCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Load(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSuiteSpecsLoad(t *testing.T) {
	for _, scale := range []Scale{ScaleSmall, ScaleMedium} {
		specs := Suite(scale)
		if len(specs) != 3 {
			t.Fatalf("suite should have 3 datasets, got %d", len(specs))
		}
		for _, s := range specs {
			if err := s.Gen.Validate(); err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
		}
	}
	// Small suite must actually load (medium is exercised by the CLI).
	for _, s := range Suite(ScaleSmall) {
		c, err := Load(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(c.Series) == 0 {
			t.Fatalf("%s: empty corpus", s.Name)
		}
		for _, z := range c.Series {
			if len(z) <= s.Warm {
				t.Fatalf("%s: series shorter than warm prefix", s.Name)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	bad := tinySpec()
	bad.Warm = 0
	if _, err := Load(bad); err == nil {
		t.Fatal("warm=0 should fail")
	}
	bad = tinySpec()
	bad.Warm = 10_000
	if _, err := Load(bad); err == nil {
		t.Fatal("warm beyond series should fail")
	}
	bad = tinySpec()
	bad.Gen.Sensors = 0
	if _, err := Load(bad); err == nil {
		t.Fatal("invalid generator should fail")
	}
}

func TestRunFig7ShapesHold(t *testing.T) {
	c := tinyCorpus(t)
	methods := []SearchMethod{MethodSMiLerIdx, MethodFastGPUScan, MethodGPUScan, MethodFastCPUScan}
	rows, err := RunFig7(c, []int{16}, 3, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(methods) {
		t.Fatalf("got %d rows", len(rows))
	}
	sim := map[SearchMethod]float64{}
	for _, r := range rows {
		if r.WallSec <= 0 {
			t.Fatalf("%s: non-positive wall time", r.Method)
		}
		sim[r.Method] = r.SimSec
	}
	// The headline shape: the index beats the banded scan, which beats
	// the unbanded scan, in simulated GPU time.
	if !(sim[MethodSMiLerIdx] < sim[MethodFastGPUScan]) {
		t.Fatalf("SMiLer-Idx (%v) should beat FastGPUScan (%v) in sim time",
			sim[MethodSMiLerIdx], sim[MethodFastGPUScan])
	}
	if !(sim[MethodFastGPUScan] < sim[MethodGPUScan]) {
		t.Fatalf("FastGPUScan (%v) should beat GPUScan (%v) in sim time",
			sim[MethodFastGPUScan], sim[MethodGPUScan])
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "SMiLer-Idx") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunFig7(c, []int{4}, 0, methods); err == nil {
		t.Fatal("steps=0 should fail")
	}
}

func TestRunFig8IndexBeatsDirect(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunFig8(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var idx, dir Fig8Row
	for _, r := range rows {
		if r.Method == MethodSMiLerIdx {
			idx = r
		} else {
			dir = r
		}
	}
	if !(idx.SimSec < dir.SimSec) {
		t.Fatalf("index LBen (%v) should beat direct (%v) in sim time", idx.SimSec, dir.SimSec)
	}
	if !strings.Contains(FormatFig8(rows), "SMiLer-Dir") {
		t.Fatal("format output incomplete")
	}
}

func TestRunTable3EnhancedBoundFiltersBest(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunTable3(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	un := map[index.LBMode]float64{}
	for _, r := range rows {
		un[r.Bound] = r.Unfiltered
	}
	if un[index.LBModeEn] > un[index.LBModeEQ] || un[index.LBModeEn] > un[index.LBModeEC] {
		t.Fatalf("LBen should leave the fewest unfiltered candidates: %v", un)
	}
	if !strings.Contains(FormatTable3(rows), "LBen") {
		t.Fatal("format output incomplete")
	}
}

func TestRunAccuracySmoke(t *testing.T) {
	c := tinyCorpus(t)
	hs := []int{1, 3}
	methods := []string{MSMiLerAR, MLazyKNN, MSgdRR, MOnlineRR, MSegHW}
	rows, timings, err := RunAccuracy(c, methods, hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(methods)*len(hs) {
		t.Fatalf("got %d accuracy rows", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 || r.MAE < 0 {
			t.Fatalf("malformed row %+v", r)
		}
	}
	if len(timings) != len(methods) {
		t.Fatalf("got %d timing rows", len(timings))
	}
	out := FormatAccuracy("Fig. 10", rows)
	if !strings.Contains(out, "MNLPD") || !strings.Contains(out, "LazyKNN") {
		t.Fatal("format output incomplete")
	}
	if !strings.Contains(FormatTable4(timings), "predict(ms)") {
		t.Fatal("table 4 format incomplete")
	}
	if _, _, err := RunAccuracy(c, []string{"nope"}, hs); err == nil {
		t.Fatal("unknown method should fail")
	}
	if _, _, err := RunAccuracy(c, methods, nil); err == nil {
		t.Fatal("empty horizons should fail")
	}
}

func TestRunAccuracyGPVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("GP variants are slow")
	}
	c := tinyCorpus(t)
	rows, _, err := RunAccuracy(c, []string{MSMiLerGP, MSMiLerNEGP, MSMiLerNSGP}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestRunFig12(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunFig12Time(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SearchSec <= 0 || r.PredictSec <= 0 {
			t.Fatalf("non-positive phase time: %+v", r)
		}
	}
	per, maxS, err := Fig12Capacity(c, gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if per <= 0 || maxS <= 0 {
		t.Fatalf("capacity %d/%d", per, maxS)
	}
	if !strings.Contains(FormatFig12(rows, per, maxS), "max") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunFig12Time(c, 0); err == nil {
		t.Fatal("steps=0 should fail")
	}
}

func TestRunFig13SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	c := tinyCorpus(t)
	rows, err := RunFig13(c, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Training time grows with the number of active points.
	if rows[1].TrainSecPer <= rows[0].TrainSecPer {
		t.Fatalf("training time should grow with active points: %v vs %v",
			rows[0].TrainSecPer, rows[1].TrainSecPer)
	}
	if !strings.Contains(FormatFig13(rows), "active") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunFig13(c, nil); err == nil {
		t.Fatal("empty sweep should fail")
	}
}

func TestAblationContinuousReuse(t *testing.T) {
	c := tinyCorpus(t)
	reuse, rebuild, err := AblationContinuousReuse(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reuse <= 0 || rebuild <= 0 {
		t.Fatalf("non-positive timings %v %v", reuse, rebuild)
	}
	if reuse >= rebuild {
		t.Fatalf("incremental update (%v) should beat full rebuild (%v)", reuse, rebuild)
	}
	if _, _, err := AblationContinuousReuse(c, 0); err == nil {
		t.Fatal("steps=0 should fail")
	}
}

func TestRunSearchProfile(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunSearchProfile(c, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var idx, scanP SearchProfile
	for _, r := range rows {
		if r.Method == MethodSMiLerIdx {
			idx = r
		} else {
			scanP = r
		}
	}
	// The full scan must move far more global-memory traffic than the
	// index (it streams every candidate segment through DTW).
	if idx.Profile.GlobalCycles >= scanP.Profile.GlobalCycles {
		t.Fatalf("index global traffic (%v) should be < scan (%v)",
			idx.Profile.GlobalCycles, scanP.Profile.GlobalCycles)
	}
	if idx.Profile.Launches == 0 || scanP.Profile.Blocks == 0 {
		t.Fatal("profile counters missing")
	}
	if !strings.Contains(FormatSearchProfile(rows), "global-mem") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunSearchProfile(c, 0, 16); err == nil {
		t.Fatal("steps=0 should fail")
	}
}
