package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is
// hashed onto the ring VirtualNodes times; a sensor id hashes to a
// point and its preference list is the sequence of distinct members
// encountered walking clockwise from that point. The first entry is
// the sensor's owner, the next R are its replicas.
//
// Virtual nodes smooth the load split (with a handful of members and
// one hash each, a single unlucky cut can own most of the key space)
// and bound the churn when membership changes: a member's removal
// reassigns only the arcs it owned.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	hashes []uint64 // sorted vnode positions
	owners []string // owners[i] is the member at hashes[i]
	nodes  []string // distinct member ids, sorted
}

// NewRing places each member id on the ring vnodes times. Membership
// is static for the life of the ring; build a new Ring to change it.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		hashes: make([]uint64, 0, len(members)*vnodes),
		owners: make([]string, 0, len(members)*vnodes),
		nodes:  append([]string(nil), members...),
	}
	sort.Strings(r.nodes)
	type point struct {
		h    uint64
		node string
	}
	pts := make([]point, 0, len(members)*vnodes)
	for _, m := range r.nodes {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hash64(m + "#" + strconv.Itoa(v)), m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node // deterministic on (absurdly rare) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.node)
	}
	return r
}

// Nodes returns the member ids (sorted).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the member owning the sensor ("" on an empty ring).
func (r *Ring) Owner(sensor string) string {
	p := r.Preference(sensor, 1)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Preference returns the first n distinct members clockwise from the
// sensor's hash point — the sensor's owner followed by its replica
// candidates. n is clamped to the member count.
func (r *Ring) Preference(sensor string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(sensor)
	// First vnode at or after h, wrapping.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.hashes) && len(out) < n; scanned++ {
		node := r.owners[(i+scanned)%len(r.hashes)]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the 64-bit murmur3 finalizer. FNV-1a alone avalanches
// poorly on short, near-identical keys (vnode labels differ only in a
// trailing digit), which visibly skews arc lengths on the ring; the
// finalizer fixes the distribution without a new hash dependency.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
