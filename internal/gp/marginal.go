package gp

import (
	"fmt"
	"math"
)

// Marginal-likelihood training — the classical alternative to the LOO
// objective the paper adopts. [Sundararajan & Keerthi 2001], the
// paper's reference [64], compares exactly these two: LOO ("GPP") is
// more robust to model misspecification, ML is the textbook choice.
// Both are provided so the trade-off can be measured
// (BenchmarkAblationWarmStart exercises LOO; TestMLvsLOO compares the
// two objectives' fits).

// MarginalLikelihood returns the log marginal likelihood of the
// model's training data: log p(y|X,Θ) = −½yᵀC⁻¹y − ½log|C| − n/2·log2π.
func (m *Model) MarginalLikelihood() float64 {
	return marginalSum(m.y, m.alpha, m.chol)
}

// mlValueGrad evaluates the log marginal likelihood and its gradient
// w.r.t. the log hyperparameters:
// ∂logZ/∂ψ_j = ½·tr((ααᵀ − C⁻¹)·∂C/∂ψ_j)   [R&W 2006, Eqn. 5.9].
// K_SE entries are read back from the retained covariance (off-diagonal
// entries are exactly K_SE; on the diagonal K_SE = θ₀²) and squared
// distances come from the trainSet source, so one O(n²) pass serves all
// three traces with no re-exponentiation.
func mlValueGrad(ts trainSet, hp Hyper, s *evalScratch) (float64, [3]float64, error) {
	var grad [3]float64
	if err := s.fit(ts, hp); err != nil {
		return 0, grad, err
	}
	lz := marginalSum(ts.y, s.alpha, &s.chol)
	if err := s.chol.InverseTo(s.kinv, s.linv); err != nil {
		return 0, grad, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	kinv := s.kinv
	n := len(ts.y)
	alpha := s.alpha

	sig2 := hp.Signal * hp.Signal
	len2 := hp.Length * hp.Length
	noise2 := hp.Noise * hp.Noise
	cov := s.cov
	for i := 0; i < n; i++ {
		kinvRow := kinv.Row(i)
		covRow := cov.Row(i)
		wii := alpha[i]*alpha[i] - kinvRow[i]
		grad[0] += 0.5 * wii * (2 * sig2)    // diagonal K_SE = θ₀², r² = 0
		grad[2] += 0.5 * wii * (2 * noise2)  // ∂C/∂log θ₂ lives on the diagonal
		for j := i + 1; j < n; j++ {
			w := 2 * (alpha[i]*alpha[j] - kinvRow[j]) // (i,j) and (j,i)
			kse := covRow[j]
			grad[0] += 0.5 * w * (2 * kse)
			grad[1] += 0.5 * w * (kse * ts.r2(i, j) / len2)
		}
	}
	return lz, grad, nil
}

// OptimizeML maximizes the log marginal likelihood with the same
// Polak–Ribière conjugate-gradient scheme Optimize uses for the LOO
// objective. The result's LOO field holds the final log marginal
// likelihood value.
func OptimizeML(x [][]float64, y []float64, init Hyper, maxIter int) (OptimizeResult, error) {
	if err := init.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if maxIter < 0 {
		return OptimizeResult{}, fmt.Errorf("gp: negative maxIter %d", maxIter)
	}
	res, err := ascend(directSet(x, y), init, maxIter, mlValueGrad)
	statOptimizeEvals.Add(uint64(res.Evals))
	return res, err
}

// objective is a (value, gradient) evaluator over log hyperparameters.
// The scratch carries every transient the evaluation needs; it is owned
// by the surrounding ascend() and reused across evaluations.
type objective func(ts trainSet, hp Hyper, s *evalScratch) (float64, [3]float64, error)

// ascend is the shared CG maximizer behind Optimize, OptimizeML and
// their Column variants. It acquires one evalScratch for the whole
// optimization and releases it on return — the deterministic join
// point for every buffer the line search touches.
func ascend(ts trainSet, init Hyper, maxIter int, obj objective) (OptimizeResult, error) {
	scr := newEvalScratch(len(ts.y))
	defer scr.release()

	psi := toLog(init).clamp()
	res := OptimizeResult{Hyper: psi.hyper()}

	f, g, err := obj(ts, psi.hyper(), scr)
	res.Evals++
	if err != nil {
		return res, err
	}
	res.LOO = f

	dir := g
	prevG := g
	for iter := 0; iter < maxIter; iter++ {
		gnorm := math.Sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
		if gnorm < 1e-7 {
			break
		}
		slope := g[0]*dir[0] + g[1]*dir[1] + g[2]*dir[2]
		if slope <= 0 {
			dir = g
			slope = gnorm * gnorm
		}
		step := 0.5
		var (
			fNew  float64
			gNew  [3]float64
			psNew logHyper
			ok    bool
		)
		for tries := 0; tries < 14; tries++ {
			cand := logHyper{psi[0] + step*dir[0], psi[1] + step*dir[1], psi[2] + step*dir[2]}.clamp()
			fc, gc, err := obj(ts, cand.hyper(), scr)
			res.Evals++
			if err == nil && !math.IsNaN(fc) && fc >= f+1e-4*step*slope {
				fNew, gNew, psNew, ok = fc, gc, cand, true
				break
			}
			step *= 0.5
		}
		if !ok {
			break
		}
		var num, den float64
		for i := 0; i < 3; i++ {
			num += gNew[i] * (gNew[i] - prevG[i])
			den += prevG[i] * prevG[i]
		}
		beta := 0.0
		if den > 0 {
			beta = num / den
			if beta < 0 {
				beta = 0
			}
		}
		for i := 0; i < 3; i++ {
			dir[i] = gNew[i] + beta*dir[i]
		}
		psi, f, g, prevG = psNew, fNew, gNew, gNew
		res.Hyper = psi.hyper()
		res.LOO = f
	}
	return res, nil
}
