package core

import (
	"math"
	"math/rand"
	"testing"

	"smiler/internal/gpusim"
	"smiler/internal/index"
)

// seasonal synthesizes a noisy periodic signal — the regime where the
// semi-lazy kNN sets contain genuinely similar patterns.
func seasonal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/48) +
			0.4*math.Sin(2*math.Pi*float64(i)/12) +
			rng.NormFloat64()*0.05
	}
	return out
}

func testPipeline(t *testing.T, factory PredictorFactory, ecfg EnsembleConfig, hist []float64) *Pipeline {
	t.Helper()
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	p := index.Params{Rho: 3, Omega: 8, ELV: []int{16, 24, 40}}
	ix, err := index.New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	cfg := PipelineConfig{
		EKV:      []int{4, 8},
		Index:    p,
		Horizon:  1,
		Factory:  factory,
		Ensemble: ecfg,
	}
	pl, err := NewPipeline(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPipelineErrors(t *testing.T) {
	if _, err := NewPipeline(nil, DefaultPipelineConfig()); err == nil {
		t.Fatal("nil index")
	}
	rng := rand.New(rand.NewSource(1))
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	p := index.Params{Rho: 3, Omega: 8, ELV: []int{16, 24}}
	ix, err := index.New(dev, seasonal(rng, 300), p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	bad := PipelineConfig{EKV: []int{4}, Horizon: 0}
	if _, err := NewPipeline(ix, bad); err == nil {
		t.Fatal("horizon 0")
	}
	bad = PipelineConfig{EKV: nil, Horizon: 1}
	if _, err := NewPipeline(ix, bad); err == nil {
		t.Fatal("empty EKV")
	}
}

func TestDefaultPipelineConfig(t *testing.T) {
	cfg := DefaultPipelineConfig()
	if len(cfg.EKV) != 3 || cfg.Horizon != 1 || cfg.Factory == nil {
		t.Fatalf("unexpected defaults %+v", cfg)
	}
	if cfg.Factory().Name() != "GP" {
		t.Fatal("default predictor should be GP")
	}
}

func TestPipelinePredictObserveLoopAR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all := seasonal(rng, 560)
	warm := 500
	pl := testPipeline(t, func() Predictor { return NewAR() }, EnsembleConfig{}, all[:warm])

	var absErr, naiveErr float64
	steps := 0
	for i := warm; i < len(all); i++ {
		pred, err := pl.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Valid() {
			t.Fatalf("invalid prediction %+v", pred)
		}
		truth := all[i]
		absErr += math.Abs(pred.Mean - truth)
		naiveErr += math.Abs(all[i-1] - truth) // persistence baseline
		if err := pl.Observe(truth); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if pl.PendingUpdates() != 0 {
		t.Fatalf("pending updates left: %d", pl.PendingUpdates())
	}
	if absErr >= naiveErr {
		t.Fatalf("semi-lazy MAE %v should beat persistence %v on seasonal data",
			absErr/float64(steps), naiveErr/float64(steps))
	}
}

func TestPipelinePredictGP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := seasonal(rng, 520)
	warm := 500
	pl := testPipeline(t, func() Predictor { return NewGP() }, EnsembleConfig{}, all[:warm])
	var absErr float64
	for i := warm; i < len(all); i++ {
		pred, err := pl.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Valid() {
			t.Fatalf("invalid prediction %+v", pred)
		}
		absErr += math.Abs(pred.Mean - all[i])
		if err := pl.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
	}
	mae := absErr / 20
	if mae > 0.25 {
		t.Fatalf("GP pipeline MAE %v too high on clean seasonal data", mae)
	}
}

func TestPipelineMultiHorizonPending(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := seasonal(rng, 515)
	warm := 500
	pl := testPipeline(t, func() Predictor { return NewAR() }, EnsembleConfig{}, all[:warm])
	const h = 5
	if _, err := pl.Predict(h); err != nil {
		t.Fatal(err)
	}
	if pl.PendingUpdates() != 1 {
		t.Fatalf("pending = %d, want 1", pl.PendingUpdates())
	}
	// The update should fire exactly when the h-th observation lands.
	for i := 0; i < h-1; i++ {
		if err := pl.Observe(all[warm+i]); err != nil {
			t.Fatal(err)
		}
		if pl.PendingUpdates() != 1 {
			t.Fatalf("pending resolved too early at step %d", i)
		}
	}
	if err := pl.Observe(all[warm+h-1]); err != nil {
		t.Fatal(err)
	}
	if pl.PendingUpdates() != 0 {
		t.Fatal("pending update not resolved at its target step")
	}
	if _, err := pl.Predict(0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if pl.Index() == nil || pl.Ensemble() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestPredictMultiMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := seasonal(rng, 520)
	warm := 500
	// Two pipelines over identical state: one multi call vs repeated
	// single calls must produce identical mixtures (AR predictors are
	// stateless, so the comparison is exact).
	a := testPipeline(t, func() Predictor { return NewAR() }, EnsembleConfig{}, all[:warm])
	b := testPipeline(t, func() Predictor { return NewAR() }, EnsembleConfig{}, all[:warm])
	hs := []int{1, 4, 9}
	multi, err := a.PredictMulti(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(hs) {
		t.Fatalf("got %d predictions", len(multi))
	}
	for _, h := range hs {
		single, err := b.Predict(h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(multi[h].Mean-single.Mean) > 1e-9 {
			t.Fatalf("h=%d: mean %v vs %v", h, multi[h].Mean, single.Mean)
		}
		if math.Abs(multi[h].Variance-single.Variance) > 1e-9 {
			t.Fatalf("h=%d: variance %v vs %v", h, multi[h].Variance, single.Variance)
		}
	}
	// Pending updates queue one entry per horizon and resolve on the
	// matching observations.
	if a.PendingUpdates() != len(hs) {
		t.Fatalf("pending = %d, want %d", a.PendingUpdates(), len(hs))
	}
	for i := 0; i < 9; i++ {
		if err := a.Observe(all[warm+i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.PendingUpdates() != 0 {
		t.Fatalf("pending = %d after maturity, want 0", a.PendingUpdates())
	}
	if _, err := a.PredictMulti(nil); err == nil {
		t.Fatal("empty horizons should fail")
	}
	if _, err := a.PredictMulti([]int{0}); err == nil {
		t.Fatal("h=0 should fail")
	}
}
