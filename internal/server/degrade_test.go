package server

import (
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"smiler"
	"smiler/internal/fault"
)

// degradeServer builds a server over a GP system with a persistence
// fallback — the configuration under which injected GP faults turn
// into degraded 200s instead of 500s.
func degradeServer(t *testing.T) (*Client, *smiler.System) {
	t.Helper()
	cfg := testConfig()
	cfg.Predictor = smiler.PredictorGP
	cfg.EKV = []int{4}
	cfg.ELV = []int{16}
	cfg.Fallback = smiler.FallbackPersistence
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.AddSensor("s", seasonal(rand.New(rand.NewSource(5)), 400)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	return cl, sys
}

// TestDegradedForecastOverHTTP asserts the API contract for degraded
// answers: HTTP 200 with the degraded flag and reason set.
func TestDegradedForecastOverHTTP(t *testing.T) {
	cl, _ := degradeServer(t)
	in := fault.NewInjector(1)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindError, Prob: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	f, err := cl.Forecast("s", 1)
	if err != nil {
		t.Fatalf("degraded forecast must be HTTP 200, got %v", err)
	}
	if !f.Degraded || f.DegradedReason != "error" {
		t.Fatalf("response = %+v, want degraded with reason \"error\"", f)
	}
	// Degraded answers sit on the bottom rung of the quality ladder.
	if f.Quality != "fallback" || f.QualityEstimate != 0 {
		t.Fatalf("degraded response quality = %q/%v, want fallback/0", f.Quality, f.QualityEstimate)
	}

	fault.Disarm()
	if f, err = cl.Forecast("s", 1); err != nil || f.Degraded {
		t.Fatalf("after disarm: f=%+v err=%v, want clean answer", f, err)
	}
	if f.Quality != "exact" || f.QualityEstimate != 1 {
		t.Fatalf("clean response quality = %q/%v, want exact/1", f.Quality, f.QualityEstimate)
	}
}

// TestSurviveThousandPanics hammers the server with forecasts while
// every GP fit panics: the process must survive >=1k recovered panics,
// every response must be a degraded HTTP 200, and the panic counter
// must account for all of them.
func TestSurviveThousandPanics(t *testing.T) {
	cl, sys := degradeServer(t)
	in := fault.NewInjector(2)
	in.Set(fault.PointGPFit, fault.Rule{Kind: fault.KindPanic, Prob: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	// Concurrent identical (sensor, horizon) requests may coalesce into
	// one flight (one panic for several responses), so workers keep
	// hammering until the recovered-panic counter itself crosses the
	// bar; every response along the way must be a degraded 200.
	const total, workers = 1000, 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2*total/workers && sys.PanicsRecovered() < total; i++ {
				f, err := cl.Forecast("s", 1+(w+i)%8)
				if err != nil {
					errs <- err
					return
				}
				if !f.Degraded || f.DegradedReason != "panic" {
					errs <- errDegraded(f)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sys.PanicsRecovered(); got < total {
		t.Fatalf("panics recovered = %d, want >= %d", got, total)
	}

	// The process is still fully functional once the fault clears.
	fault.Disarm()
	if f, err := cl.Forecast("s", 1); err != nil || f.Degraded {
		t.Fatalf("after 1k panics and disarm: f=%+v err=%v", f, err)
	}
}

type errDegraded ForecastResponse

func (e errDegraded) Error() string {
	return "response not degraded-by-panic: " + e.DegradedReason
}
