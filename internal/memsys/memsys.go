// Package memsys is a size-classed slab pool for the predict hot
// path, in the spirit of aistore's memsys scatter-gather allocator:
// float64 and byte slabs are handed out in power-of-two size classes
// and recycled through per-class free lists, so the ~3.3k transient
// allocations a single Predict used to make (Gram matrices, Cholesky
// factors, DTW cost rows, kNN buffers, WAL frames) become slab
// round-trips the garbage collector never sees.
//
// Design constraints, in order:
//
//  1. Bit-identical outputs. Get returns zeroed slabs, so pooled code
//     paths observe exactly the state a fresh make() would give them;
//     whether a buffer came from the pool or the heap can never change
//     a computed float.
//  2. Aliasing safety by construction. Put is always optional — a slab
//     that is never returned is ordinary garbage. The only way to
//     corrupt state is returning a slab that is still referenced, so
//     every Put in the tree sits at a deterministic join point (end of
//     a column evaluation, end of a search, end of an append).
//  3. Observability. Every class counts hits, misses, puts and drops,
//     and tracks slabs currently outstanding; smiler.System bridges the
//     snapshot into /metrics as smiler_memsys_* families.
//
// Free lists are fixed-capacity buffered channels (the aistore idiom):
// Get and Put are a nonblocking channel op each — no locks, no boxing
// allocations — and the worst-case memory retained per class is
// bounded by the channel capacity at construction time.
package memsys

import (
	"sync/atomic"
)

// Class layout. Slabs are powers of two from 1<<minShift to
// 1<<maxShift elements; larger requests fall through to the heap.
const (
	minShift = 5  // smallest slab: 32 elements
	maxShift = 20 // largest slab: 1 Mi elements (8 MiB of float64)
	nClasses = maxShift - minShift + 1
)

// enabled gates the whole pool: when false, Get degrades to plain
// make and Put to a no-op — the unpooled reference behaviour the
// determinism tests compare against. Process-global by design:
// pooling is an allocator property, like GOGC.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether pooling is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches pooling on or off process-wide. Disabling does
// not invalidate outstanding slabs (they simply stop being recycled).
func SetEnabled(v bool) { enabled.Store(v) }

// classStats holds one size class's counters.
type classStats struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
	drops  atomic.Uint64
	inuse  atomic.Int64
}

// ClassStats is a point-in-time snapshot of one size class.
type ClassStats struct {
	// Size is the slab length in elements (float64s or bytes).
	Size int
	// Hits counts Gets served from the free list.
	Hits uint64
	// Misses counts Gets that fell through to the heap.
	Misses uint64
	// Puts counts slabs returned and accepted.
	Puts uint64
	// Drops counts slabs returned to a full free list (left to the GC).
	Drops uint64
	// InUse is the number of slabs currently outstanding (Gets minus
	// returns, including dropped returns).
	InUse int64
}

// floatPool is the float64 side of the allocator.
var floatPool = newPool[float64]()

// bytePool is the byte side.
var bytePool = newPool[byte]()

type pool[T float64 | byte] struct {
	free  [nClasses]chan []T
	stats [nClasses]classStats
}

// freeCap bounds how many idle slabs a class retains: small classes
// keep more (they churn fastest), large classes keep a handful so the
// worst-case idle footprint stays a few tens of MiB.
func freeCap(shift int) int {
	if shift >= 14 {
		return 8
	}
	c := 1 << (14 - shift) // 512 at 1<<5 down to 8 at 1<<14 and above
	if c > 512 {
		c = 512
	}
	return c
}

func newPool[T float64 | byte]() *pool[T] {
	p := &pool[T]{}
	for i := range p.free {
		p.free[i] = make(chan []T, freeCap(minShift+i))
	}
	return p
}

// classFor returns the class index serving a request of n elements,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxShift {
		return -1
	}
	c := 0
	for sz := 1 << minShift; sz < n; sz <<= 1 {
		c++
	}
	return c
}

// get returns a zeroed slab of length n.
func (p *pool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if !enabled.Load() || c < 0 {
		// Plain heap semantics; not tracked (Put of such a slab is a
		// no-op unless n landed exactly on a class size, in which case
		// the gauges drift by a few — they are best-effort).
		return make([]T, n)
	}
	st := &p.stats[c]
	st.inuse.Add(1)
	select {
	case s := <-p.free[c]:
		st.hits.Add(1)
		s = s[:n]
		clear(s)
		return s
	default:
		st.misses.Add(1)
		return make([]T, n, 1<<(minShift+c))
	}
}

// put recycles a slab obtained from get. Only slabs whose capacity is
// exactly a class size are accepted; anything else (including slabs
// from plain make) is left to the GC. Safe to call with nil.
func (p *pool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	c := classFor(cap(s))
	if c < 0 || cap(s) != 1<<(minShift+c) {
		return
	}
	st := &p.stats[c]
	st.inuse.Add(-1)
	if !enabled.Load() {
		st.drops.Add(1)
		return
	}
	// Nonblocking: a full free list means the class is over its idle
	// cap, so the slab is surrendered to the GC.
	select {
	case p.free[c] <- s[:0]:
		st.puts.Add(1)
	default:
		st.drops.Add(1)
	}
}

func (p *pool[T]) snapshot() []ClassStats {
	out := make([]ClassStats, nClasses)
	for i := range out {
		st := &p.stats[i]
		out[i] = ClassStats{
			Size:   1 << (minShift + i),
			Hits:   st.hits.Load(),
			Misses: st.misses.Load(),
			Puts:   st.puts.Load(),
			Drops:  st.drops.Load(),
			InUse:  st.inuse.Load(),
		}
	}
	return out
}

// GetFloats returns a zeroed []float64 of length n (capacity rounded
// up to the slab class). n <= 0 returns nil.
func GetFloats(n int) []float64 { return floatPool.get(n) }

// PutFloats recycles a slab from GetFloats. The caller must not touch
// the slice afterwards. Optional: never calling it only costs GC work.
func PutFloats(s []float64) { floatPool.put(s) }

// GetBytes returns a zeroed []byte of length n.
func GetBytes(n int) []byte { return bytePool.get(n) }

// PutBytes recycles a slab from GetBytes.
func PutBytes(b []byte) { bytePool.put(b) }

// FloatStats snapshots the float64 classes.
func FloatStats() []ClassStats { return floatPool.snapshot() }

// ByteStats snapshots the byte classes.
func ByteStats() []ClassStats { return bytePool.snapshot() }

// Totals aggregates a snapshot into one row.
func Totals(cs []ClassStats) ClassStats {
	var t ClassStats
	for _, c := range cs {
		t.Hits += c.Hits
		t.Misses += c.Misses
		t.Puts += c.Puts
		t.Drops += c.Drops
		t.InUse += c.InUse
	}
	return t
}
