package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Manager shards one logical WAL across N per-shard Logs, mirroring
// the ingestion pipeline's sharding: a sensor's registration and all
// its observations land in one shard's log, so per-sensor ordering is
// preserved by per-shard append order — the same argument the
// ingestion pipeline makes for its queues. Cross-sensor order is not
// preserved and does not matter (sensors are independent).
type Manager struct {
	dir      string
	logs     []*Log
	shardFor func(id string, shards int) int
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// metaName is the per-WAL-directory metadata file pinning the shard
// count the logs were written under. Sensor→shard placement depends on
// the shard count, so reopening existing logs under a different count
// would route a sensor's new appends to a different log than its old
// records and scramble per-sensor replay order. The pinned count wins
// over the configured one until the directory is cleared (RemoveDir).
const metaName = "wal.meta"

// readMeta returns the pinned shard count, or 0 when no meta file
// exists (fresh directory or one written before meta was introduced).
func readMeta(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("wal: corrupt meta file %s: %q", filepath.Join(dir, metaName), b)
	}
	return n, nil
}

func writeMeta(dir string, shards int) error {
	return WriteFileAtomic(filepath.Join(dir, metaName), func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%d\n", shards)
		return err
	})
}

// listShardDirs returns the shard indices of the existing shard-NNN
// subdirectories, ascending.
func listShardDirs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var shards []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-"))
		if err != nil {
			continue
		}
		shards = append(shards, n)
	}
	sort.Ints(shards)
	return shards, nil
}

// OpenManager opens (creating as needed) a sharded WAL under dir with
// one log per shard. shardFor maps a sensor id onto its shard and
// must match the ingestion pipeline's placement (ingest.ShardIndex)
// so registration records share a log with their observations.
//
// The first open of a directory pins the shard count in a meta file;
// later opens reuse the pinned count (callers should size anything
// that must agree on placement — e.g. the ingestion pipeline — from
// Shards(), not from their configured value). A directory holding
// shard subdirectories but no meta file (written before meta existed)
// pins the count inferred from the highest shard index.
func OpenManager(dir string, shards int, opts Options, shardFor func(id string, shards int) int) (*Manager, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("wal: shard count %d must be positive", shards)
	}
	if shardFor == nil {
		return nil, fmt.Errorf("wal: nil shard function")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	pinned, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if pinned == 0 {
		if existing, err := listShardDirs(dir); err != nil {
			return nil, err
		} else if len(existing) > 0 {
			pinned = existing[len(existing)-1] + 1
		}
	}
	if pinned > 0 {
		shards = pinned
	}
	if err := writeMeta(dir, shards); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, logs: make([]*Log, shards), shardFor: shardFor}
	for i := range m.logs {
		l, err := Open(shardDir(dir, i), opts)
		if err != nil {
			for _, open := range m.logs[:i] {
				open.Close()
			}
			return nil, err
		}
		m.logs[i] = l
	}
	return m, nil
}

// Shards returns the number of shard logs.
func (m *Manager) Shards() int { return len(m.logs) }

// AppendObserve logs one observation into the given shard's log (the
// shard the ingestion pipeline routed the observation to).
func (m *Manager) AppendObserve(shard int, id string, v float64) error {
	if shard < 0 || shard >= len(m.logs) {
		return fmt.Errorf("wal: shard %d out of range [0, %d)", shard, len(m.logs))
	}
	_, err := m.logs[shard].Append(Record{Type: RecObserve, Sensor: id, Value: v})
	return err
}

// AppendAddSensor logs a sensor registration into the sensor's shard.
func (m *Manager) AppendAddSensor(id string, history []float64) error {
	_, err := m.logs[m.shardFor(id, len(m.logs))].Append(Record{
		Type: RecAddSensor, Sensor: id, History: history,
	})
	return err
}

// AppendRemoveSensor logs a sensor removal into the sensor's shard.
func (m *Manager) AppendRemoveSensor(id string) error {
	_, err := m.logs[m.shardFor(id, len(m.logs))].Append(Record{
		Type: RecRemoveSensor, Sensor: id,
	})
	return err
}

// NextSeqs reports, per shard, the sequence number the shard's next
// append will receive. Captured immediately after a Sync, it is the
// "cover" a checkpoint embeds: every record with a lower sequence
// number is folded into the checkpoint and must be skipped on replay.
func (m *Manager) NextSeqs() map[int]uint64 {
	out := make(map[int]uint64, len(m.logs))
	for i, l := range m.logs {
		out[i] = l.NextSeq()
	}
	return out
}

// Sync fsyncs every shard log.
func (m *Manager) Sync() error {
	for _, l := range m.logs {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards every record in every shard log (all are covered by
// a just-written checkpoint).
func (m *Manager) Reset() error {
	for _, l := range m.logs {
		if err := l.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// Close seals every shard log.
func (m *Manager) Close() error {
	var first error
	for _, l := range m.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats sums the per-shard log counters.
func (m *Manager) Stats() LogStats {
	var st LogStats
	for _, l := range m.logs {
		s := l.Stats()
		st.Appends += s.Appends
		st.Syncs += s.Syncs
		st.Bytes += s.Bytes
		st.Rotations += s.Rotations
	}
	return st
}

// ReplayDir visits every intact record under a sharded WAL directory,
// shard by shard (ascending shard index), in append order within each
// shard. It reads whatever shard directories exist on disk — not a
// configured count — so recovery survives a restart with a different
// shard setting. Per shard, replay stops cleanly at the first torn or
// corrupt record; stats are aggregated across shards.
func ReplayDir(dir string, fn func(shard int, seq uint64, r Record) error) (ReplayStats, error) {
	var st ReplayStats
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	var shards []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-"))
		if err != nil {
			continue
		}
		shards = append(shards, n)
	}
	sort.Ints(shards)
	for _, shard := range shards {
		sub, err := Replay(shardDir(dir, shard), func(seq uint64, r Record) error {
			return fn(shard, seq, r)
		})
		st.Records += sub.Records
		st.Segments += sub.Segments
		if sub.Torn {
			st.Torn = true
			st.TornSegment = sub.TornSegment
		}
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// RemoveDir deletes a sharded WAL directory tree entirely — shard
// logs, sequence numbers and the pinned shard count all reset. The
// directory itself is kept (recreated empty) so a configured -wal-dir
// stays valid. Note that a checkpoint whose cover refers to the
// removed logs becomes stale; prefer Manager.Reset, which preserves
// sequence numbers, when a checkpoint covers the log.
func RemoveDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
		if !e.IsDir() && e.Name() == metaName {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	return nil
}
