// Package bench is the experiment harness: for every table and figure
// in the paper's evaluation (Section 6) it provides a runner that
// regenerates the corresponding rows/series on the synthetic corpora,
// plus text formatting for the CLI. Scales are reduced so everything
// runs on a laptop-class CPU; EXPERIMENTS.md records how the measured
// shapes compare with the paper's.
package bench

import (
	"fmt"
	"time"

	"smiler/internal/datasets"
	"smiler/internal/timeseries"
)

// DatasetSpec describes one evaluation corpus instance.
type DatasetSpec struct {
	Name string
	Gen  datasets.Config
	// Warm is the number of points used as initial history; the rest
	// of each series is the continuous-prediction test stream.
	Warm int
	// TestSteps caps the number of continuous steps evaluated.
	TestSteps int
}

// Scale selects how big the experiment corpora are.
type Scale int

const (
	// ScaleSmall is sized for unit tests and -bench runs (seconds).
	ScaleSmall Scale = iota
	// ScaleMedium is sized for the CLI harness (minutes).
	ScaleMedium
)

// Suite returns ROAD/MALL/NET dataset specs at the given scale.
func Suite(s Scale) []DatasetSpec {
	switch s {
	case ScaleMedium:
		return []DatasetSpec{
			{Name: "ROAD", Gen: datasets.Config{Kind: datasets.Road, Sensors: 8, Days: 21, Seed: 11}, Warm: 2600, TestSteps: 200},
			{Name: "MALL", Gen: datasets.Config{Kind: datasets.Mall, Sensors: 4, Duplicates: 2, Days: 21, Seed: 12}, Warm: 2600, TestSteps: 200},
			{Name: "NET", Gen: datasets.Config{Kind: datasets.Net, Sensors: 1, Duplicates: 8, Days: 14, Seed: 13}, Warm: 3600, TestSteps: 200},
		}
	default:
		return []DatasetSpec{
			{Name: "ROAD", Gen: datasets.Config{Kind: datasets.Road, Sensors: 2, Days: 7, Seed: 11}, Warm: 880, TestSteps: 40},
			{Name: "MALL", Gen: datasets.Config{Kind: datasets.Mall, Sensors: 2, Days: 7, Seed: 12}, Warm: 880, TestSteps: 40},
			{Name: "NET", Gen: datasets.Config{Kind: datasets.Net, Sensors: 2, Days: 4, Seed: 13}, Warm: 1000, TestSteps: 40},
		}
	}
}

// Corpus is a generated and z-normalized dataset ready for evaluation.
// All methods consume the same normalized space, so MAE/MNLPD are
// directly comparable (the paper z-normalizes every sensor).
type Corpus struct {
	Spec   DatasetSpec
	Series [][]float64 // normalized full series, one per sensor
	IDs    []string
}

// Load generates and normalizes the corpus. Normalization statistics
// come from the warm prefix only, so the test stream is unseen.
func Load(spec DatasetSpec) (*Corpus, error) {
	ss, err := datasets.Generate(spec.Gen)
	if err != nil {
		return nil, err
	}
	if spec.Warm <= 0 {
		return nil, fmt.Errorf("bench: warm %d must be positive", spec.Warm)
	}
	c := &Corpus{Spec: spec}
	for _, s := range ss {
		vals := s.Values()
		if len(vals) <= spec.Warm {
			return nil, fmt.Errorf("bench: series %s has %d points, warm is %d", s.ID(), len(vals), spec.Warm)
		}
		norm, err := timeseries.NewNormalizer(vals[:spec.Warm])
		if err != nil {
			return nil, err
		}
		z := make([]float64, len(vals))
		for i, v := range vals {
			z[i] = norm.Apply(v)
		}
		c.Series = append(c.Series, z)
		c.IDs = append(c.IDs, s.ID())
	}
	return c, nil
}

// TestLen returns the usable number of continuous test steps for a
// series given the horizon cap (the truth for step t at horizon h must
// exist inside the series).
func (c *Corpus) TestLen(series []float64, maxH int) int {
	n := len(series) - c.Spec.Warm - maxH
	if n > c.Spec.TestSteps {
		n = c.Spec.TestSteps
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Timer measures wall-clock segments.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Seconds returns the elapsed wall-clock seconds.
func (t Timer) Seconds() float64 { return time.Since(t.start).Seconds() }
