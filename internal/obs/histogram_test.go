package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries: a value equal to an upper bound lands
// in that bucket (le semantics), a value above the last bound lands in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 3.9, 4, 4.0001, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (≤1, ≤2, ≤4, +Inf) non-cumulative
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 8 {
		t.Fatal("NaN observation must be ignored")
	}
}

// TestHistogramQuantileUniform: 1..100 against decade buckets is
// uniform within every bucket, so linear interpolation recovers exact
// quantiles.
func TestHistogramQuantileUniform(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50},
		{0.90, 90},
		{0.99, 99},
		{0.10, 10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Sum(); got != 5050 {
		t.Fatalf("sum = %v, want 5050", got)
	}
}

// TestHistogramQuantileSkewed: mass concentrated in one bucket.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 98; i++ {
		h.Observe(0.005) // all in the ≤0.01 bucket
	}
	h.Observe(0.5)
	h.Observe(5) // +Inf bucket
	// p50 rank = 50 of 100 → inside the first bucket: 0 + 0.01*50/98.
	if got, want := h.Quantile(0.5), 0.01*50/98; math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99 rank = 99 → the (0.1, 1] bucket holds observation 99.
	if got := h.Quantile(0.99); got <= 0.1 || got > 1 {
		t.Errorf("p99 = %v, want within (0.1, 1]", got)
	}
	// p999 rank 99.9 lands in +Inf → clamped to the largest finite bound.
	if got := h.Quantile(0.999); got != 1 {
		t.Errorf("p999 = %v, want clamp to 1", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(nil) // DefBuckets
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
	h.Observe(0.003)
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	if len(h.Bounds()) != len(DefBuckets) {
		t.Fatal("nil bounds must take DefBuckets")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if math.IsNaN(s.P50) || math.IsNaN(s.P90) || math.IsNaN(s.P99) {
		t.Fatalf("snapshot quantiles NaN: %+v", s)
	}
}
